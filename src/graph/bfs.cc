#include "graph/bfs.h"

namespace flash {

Path bfs_path(const Graph& g, NodeId s, NodeId t, const EdgeFilter& admit) {
  Path path;
  LegacyScratchLease lease;
  GraphScratch& scratch = lease.get();
  if (admit) {
    bfs_path_core(g, s, t, scratch, LegacyCallable<EdgeFilter>{&admit}, path);
  } else {
    bfs_path_core(g, s, t, scratch, AdmitAll{}, path);
  }
  return path;
}

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId src,
                                         const EdgeFilter& admit) {
  LegacyScratchLease lease;
  GraphScratch& scratch = lease.get();
  if (admit) {
    bfs_core<true>(g, src, kInvalidNode, scratch,
                   LegacyCallable<EdgeFilter>{&admit});
  } else {
    bfs_core<true>(g, src, kInvalidNode, scratch, AdmitAll{});
  }
  std::vector<std::uint32_t> dist(g.num_nodes(), kUnreachable);
  for (std::size_t v = 0; v < dist.size(); ++v) {
    dist[v] = scratch.hops.get_or(v, kUnreachable);
  }
  return dist;
}

std::vector<EdgeId> bfs_tree(const Graph& g, NodeId src,
                             const EdgeFilter& admit) {
  LegacyScratchLease lease;
  GraphScratch& scratch = lease.get();
  if (admit) {
    bfs_core(g, src, kInvalidNode, scratch, LegacyCallable<EdgeFilter>{&admit});
  } else {
    bfs_core(g, src, kInvalidNode, scratch, AdmitAll{});
  }
  std::vector<EdgeId> parent(g.num_nodes(), kInvalidEdge);
  for (std::size_t v = 0; v < parent.size(); ++v) {
    parent[v] = scratch.parent.get_or(v, kInvalidEdge);
  }
  return parent;
}

bool reachable(const Graph& g, NodeId s, NodeId t, const EdgeFilter& admit) {
  if (s >= g.num_nodes() || t >= g.num_nodes()) return false;
  if (s == t) return true;
  LegacyScratchLease lease;
  GraphScratch& scratch = lease.get();
  if (admit) {
    bfs_core(g, s, t, scratch, LegacyCallable<EdgeFilter>{&admit});
  } else {
    bfs_core(g, s, t, scratch, AdmitAll{});
  }
  return scratch.parent.contains(t);
}

}  // namespace flash

#include "graph/bfs.h"

#include <algorithm>
#include <deque>

namespace flash {

namespace {

/// Runs BFS from src, recording the discovering edge of each node.
/// Stops early when `stop_at` is discovered (pass kInvalidNode to explore
/// the full reachable set).
std::vector<EdgeId> bfs_parents(const Graph& g, NodeId src, NodeId stop_at,
                                const EdgeFilter& admit) {
  std::vector<EdgeId> parent(g.num_nodes(), kInvalidEdge);
  std::vector<char> seen(g.num_nodes(), 0);
  std::deque<NodeId> queue;
  seen[src] = 1;
  queue.push_back(src);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (EdgeId e : g.out_edges(u)) {
      const NodeId v = g.to(e);
      if (seen[v]) continue;
      if (admit && !admit(e)) continue;
      seen[v] = 1;
      parent[v] = e;
      if (v == stop_at) return parent;
      queue.push_back(v);
    }
  }
  return parent;
}

}  // namespace

Path bfs_path(const Graph& g, NodeId s, NodeId t, const EdgeFilter& admit) {
  if (s == t) return {};
  const auto parent = bfs_parents(g, s, t, admit);
  if (parent[t] == kInvalidEdge) return {};
  Path path;
  NodeId cur = t;
  while (cur != s) {
    const EdgeId e = parent[cur];
    path.push_back(e);
    cur = g.from(e);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<std::uint32_t> bfs_distances(const Graph& g, NodeId src,
                                         const EdgeFilter& admit) {
  std::vector<std::uint32_t> dist(g.num_nodes(), kUnreachable);
  std::deque<NodeId> queue;
  dist[src] = 0;
  queue.push_back(src);
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    for (EdgeId e : g.out_edges(u)) {
      const NodeId v = g.to(e);
      if (dist[v] != kUnreachable) continue;
      if (admit && !admit(e)) continue;
      dist[v] = dist[u] + 1;
      queue.push_back(v);
    }
  }
  return dist;
}

std::vector<EdgeId> bfs_tree(const Graph& g, NodeId src,
                             const EdgeFilter& admit) {
  return bfs_parents(g, src, kInvalidNode, admit);
}

bool reachable(const Graph& g, NodeId s, NodeId t, const EdgeFilter& admit) {
  if (s == t) return true;
  const auto parent = bfs_parents(g, s, t, admit);
  return parent[t] != kInvalidEdge;
}

}  // namespace flash

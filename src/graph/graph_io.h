// Edge-list and Lightning-snapshot serialization of topologies.
//
// Edge-list format (one channel per line, '#' comments allowed):
//   u,v
// Node count is max id + 1 unless a "nodes,<n>" header line raises it.
// This matches the simple CSV crawls released with the paper's artifact.
//
// Snapshot format (CLoTH-style channel CSV, '#' comments allowed):
//   nodes,<n>
//   channel,u,v,bal_uv,bal_vu,base_uv,rate_uv,base_vu,rate_vu
// One line per channel carrying both directional balances and both
// directional linear fee policies (fee = base + rate * amount). The fee
// fields stay raw numbers here so graph/ does not depend on ledger/;
// trace/workload.h's make_snapshot_workload turns them into a FeeSchedule.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace flash {

/// Writes `g` as an edge list.
void write_edge_list(std::ostream& os, const Graph& g);

/// Parses an edge list. Throws std::runtime_error on malformed input.
Graph read_edge_list(std::istream& is);

/// Convenience file wrappers; throw std::runtime_error on I/O failure.
void save_edge_list(const std::string& path, const Graph& g);
Graph load_edge_list(const std::string& path);

/// One channel of a Lightning network snapshot: endpoints, directional
/// balances, and directional linear fee parameters.
struct SnapshotChannel {
  NodeId u = 0;
  NodeId v = 0;
  Amount balance_uv = 0;
  Amount balance_vu = 0;
  Amount base_uv = 0;
  double rate_uv = 0;
  Amount base_vu = 0;
  double rate_vu = 0;
};

/// A parsed Lightning snapshot. Channels keep file order, which becomes
/// the Graph channel order when materialized.
struct LightningSnapshot {
  std::size_t num_nodes = 0;
  std::vector<SnapshotChannel> channels;

  /// Builds the finalized topology (channels in snapshot order).
  Graph to_graph() const;
};

/// Writes a snapshot in the channel-CSV format above, with enough float
/// precision that read_lightning_snapshot round-trips bit-exactly.
void write_lightning_snapshot(std::ostream& os, const LightningSnapshot& s);

/// Parses a snapshot. Throws std::runtime_error naming the offending line
/// on malformed input, duplicate channels (either orientation), self
/// channels, node ids outside a declared "nodes" header, and balances or
/// fee parameters that are negative, non-finite, or overflow a double.
LightningSnapshot read_lightning_snapshot(std::istream& is);

/// Convenience file wrappers; throw std::runtime_error on I/O failure.
void save_lightning_snapshot(const std::string& path,
                             const LightningSnapshot& s);
LightningSnapshot load_lightning_snapshot(const std::string& path);

}  // namespace flash

// Edge-list serialization of topologies.
//
// Format (one channel per line, '#' comments allowed):
//   u,v
// Node count is max id + 1 unless a "nodes,<n>" header line raises it.
// This matches the simple CSV crawls released with the paper's artifact.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace flash {

/// Writes `g` as an edge list.
void write_edge_list(std::ostream& os, const Graph& g);

/// Parses an edge list. Throws std::runtime_error on malformed input.
Graph read_edge_list(std::istream& is);

/// Convenience file wrappers; throw std::runtime_error on I/O failure.
void save_edge_list(const std::string& path, const Graph& g);
Graph load_edge_list(const std::string& path);

}  // namespace flash

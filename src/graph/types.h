// Fundamental identifier types for the payment-channel network graph.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace flash {

/// Dense node index in [0, Graph::num_nodes()).
using NodeId = std::uint32_t;

/// Dense directed-edge index in [0, Graph::num_edges()).
/// A payment channel contributes two directed edges (one per direction).
using EdgeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

/// A path is the sequence of directed edges traversed from sender to
/// receiver. Edge sequences (rather than node sequences) are unambiguous in
/// the presence of parallel channels between the same pair of nodes.
using Path = std::vector<EdgeId>;

/// Monetary amount. The unit is workload-defined (USD for Ripple-style
/// workloads, satoshi for Bitcoin/Lightning-style ones); doubles carry both
/// comfortably at the scales the paper uses.
using Amount = double;

}  // namespace flash

// Fundamental identifier types for the payment-channel network graph.
#pragma once

#include <cstdint>
#include <limits>
#include <type_traits>
#include <vector>

namespace flash {

/// Dense node index in [0, Graph::num_nodes()).
using NodeId = std::uint32_t;

/// Dense directed-edge index in [0, Graph::num_edges()).
/// A payment channel contributes two directed edges (one per direction).
using EdgeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

// Width audit for Lightning-scale graphs. The largest synthetic topology the
// benches build is 100k nodes at the crawled Lightning density (~14.34
// channels/node), i.e. ~1.44M channels and ~2.9M directed edges — far below
// 2^32, so 32-bit ids are ample and halve the footprint (and the cache
// traffic) of every CSR array relative to size_t ids. pair_key() above packs
// two NodeIds into one 64-bit key, which also depends on the 32-bit width.
static_assert(sizeof(NodeId) == 4 && sizeof(EdgeId) == 4,
              "graph ids are 32-bit by design; widening doubles CSR memory");
static_assert(std::numeric_limits<EdgeId>::max() >= 100'000ull * 15 * 2,
              "EdgeId must index every directed edge of a 100k-node "
              "Lightning-density graph");

/// A path is the sequence of directed edges traversed from sender to
/// receiver. Edge sequences (rather than node sequences) are unambiguous in
/// the presence of parallel channels between the same pair of nodes.
using Path = std::vector<EdgeId>;

/// Monetary amount. The unit is workload-defined (USD for Ripple-style
/// workloads, satoshi for Bitcoin/Lightning-style ones); doubles carry both
/// comfortably at the scales the paper uses.
using Amount = double;

/// Packs an *ordered* (s, t) node pair into one 64-bit map key: t in the
/// low half, s in the high half. Shared by every per-pair cache (mice
/// routing table, testbed path providers, scenario channel index) so the
/// width check lives in exactly one place.
inline std::uint64_t pair_key(NodeId s, NodeId t) noexcept {
  static_assert(sizeof(NodeId) == 4 && std::is_unsigned_v<NodeId>,
                "pair_key packs two NodeIds into 64 bits");
  return (static_cast<std::uint64_t>(s) << 32) | t;
}

}  // namespace flash

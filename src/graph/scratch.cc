#include "graph/scratch.h"

namespace flash {

GraphScratch& internal_graph_scratch() {
  // One workspace per thread: the legacy entry points stay allocation-free
  // in steady state without any cross-thread sharing (sweep-engine workers
  // each get their own).
  static thread_local GraphScratch scratch;
  return scratch;
}

}  // namespace flash

// Topology generators for offchain-network experiments.
//
// The paper evaluates on a pruned Ripple crawl (1,870 nodes / 17,416 edges),
// a Lightning snapshot (2,511 nodes / 36,016 channels) and Watts-Strogatz
// graphs for the testbed (§4.1, §5.2). The real crawls are not available
// offline, so `ripple_like` / `lightning_like` build scale-free graphs with
// matched node and channel counts (see DESIGN.md "Substitutions").
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/rng.h"

namespace flash {

/// Watts-Strogatz small-world graph: ring lattice with `k_neighbors`
/// (rounded down to even) neighbours per node, each lattice edge rewired
/// with probability beta. Self-loops and duplicate channels are avoided.
/// Precondition: n > k_neighbors >= 2.
Graph watts_strogatz(std::size_t n, std::size_t k_neighbors, double beta,
                     Rng& rng);

/// Barabasi-Albert preferential attachment: each new node attaches
/// `m_attach` channels to existing nodes with probability proportional to
/// degree. Precondition: n > m_attach >= 1.
Graph barabasi_albert(std::size_t n, std::size_t m_attach, Rng& rng);

/// Erdos-Renyi G(n, M): exactly `channels` distinct random channels.
Graph erdos_renyi(std::size_t n, std::size_t channels, Rng& rng);

/// Scale-free graph with exactly `channels` channels: Barabasi-Albert core
/// plus preferential extra edges until the target count is reached.
/// Precondition: channels >= n - 1.
Graph scale_free(std::size_t n, std::size_t channels, Rng& rng);

/// Ripple-like topology: 1,870 nodes, 8,708 channels (the paper's 17,416
/// directed edges), scale-free.
Graph ripple_like(Rng& rng);

/// Lightning-like topology: 2,511 nodes, 36,016 channels, scale-free.
Graph lightning_like(Rng& rng);

/// Lightning-density scale-free topology at an arbitrary node count: keeps
/// the crawled snapshot's ~14.34 channels/node (36,016 / 2,511) so 10k-100k
/// node synthetics are degree-comparable with `lightning_like`. Precondition:
/// nodes >= 2.
Graph scale_free_lightning(std::size_t nodes, Rng& rng);

/// Simple deterministic shapes for unit tests.
Graph ring_graph(std::size_t n);
Graph line_graph(std::size_t n);
Graph star_graph(std::size_t leaves);
Graph complete_graph(std::size_t n);

/// Rebuilds the graph keeping only channels that survive iterative removal
/// of nodes with fewer than `min_degree` distinct neighbours, mimicking the
/// paper's preprocessing ("we remove nodes with only a single neighbor";
/// use min_degree = 2). Node ids are compacted; `old_to_new` (optional out)
/// receives the mapping (kInvalidNode for dropped nodes).
Graph prune_low_degree(const Graph& g, std::size_t min_degree,
                       std::vector<NodeId>* old_to_new = nullptr);

/// True if the undirected topology is connected (ignoring isolated graphs
/// with zero nodes, which count as connected).
bool is_connected(const Graph& g);

/// Approximate betweenness centrality (Brandes' accumulation over sampled
/// BFS pivots, unweighted shortest paths). `samples` pivots are drawn
/// deterministically from `seed` via a partial Fisher-Yates shuffle;
/// samples == 0 or >= n runs every node as a pivot — exact betweenness up
/// to the uniform 1/samples scaling, which rank consumers (fault
/// injection's hub targeting) don't care about. Returns one score per
/// node; endpoints are excluded, as in the classic definition.
std::vector<double> approx_betweenness(const Graph& g, std::size_t samples,
                                       std::uint64_t seed);

}  // namespace flash

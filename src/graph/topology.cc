#include "graph/topology.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "graph/bfs.h"

namespace flash {

namespace {

/// Tracks existing undirected pairs to avoid duplicate channels. Hashed on
/// the packed pair_key so membership stays O(1) at 100k-node scale (only
/// insert/contains are used — iteration order never matters here).
class PairSet {
 public:
  void reserve(std::size_t channels) { pairs_.reserve(channels); }
  bool insert(NodeId u, NodeId v) {
    if (u > v) std::swap(u, v);
    return pairs_.insert(pair_key(u, v)).second;
  }
  bool contains(NodeId u, NodeId v) const {
    if (u > v) std::swap(u, v);
    return pairs_.count(pair_key(u, v)) != 0;
  }

 private:
  std::unordered_set<std::uint64_t> pairs_;
};

}  // namespace

Graph watts_strogatz(std::size_t n, std::size_t k_neighbors, double beta,
                     Rng& rng) {
  if (n <= k_neighbors || k_neighbors < 2) {
    throw std::invalid_argument("watts_strogatz: need n > k_neighbors >= 2");
  }
  const std::size_t half = k_neighbors / 2;
  Graph g(n);
  PairSet pairs;

  // Ring lattice: each node connects to its `half` clockwise neighbours.
  struct Lattice {
    NodeId u, v;
  };
  std::vector<Lattice> lattice;
  lattice.reserve(n * half);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 1; j <= half; ++j) {
      lattice.push_back({static_cast<NodeId>(i),
                         static_cast<NodeId>((i + j) % n)});
    }
  }
  // Rewire the far endpoint with probability beta.
  for (auto& e : lattice) {
    NodeId u = e.u;
    NodeId v = e.v;
    if (rng.chance(beta)) {
      // Pick a fresh endpoint; fall back to the lattice neighbour when the
      // node is already saturated.
      for (int attempt = 0; attempt < 64; ++attempt) {
        const auto w = static_cast<NodeId>(rng.next_below(n));
        if (w != u && !pairs.contains(u, w)) {
          v = w;
          break;
        }
      }
    }
    if (u != v && pairs.insert(u, v)) g.add_channel(u, v);
  }
  g.finalize();
  return g;
}

Graph barabasi_albert(std::size_t n, std::size_t m_attach, Rng& rng) {
  if (m_attach < 1 || n <= m_attach) {
    throw std::invalid_argument("barabasi_albert: need n > m_attach >= 1");
  }
  Graph g(n);
  PairSet pairs;
  // Repeated-endpoint list implements preferential attachment: nodes appear
  // once per incident channel, so sampling the list is degree-proportional.
  std::vector<NodeId> endpoints;

  // Seed: a clique over the first m_attach + 1 nodes keeps early sampling
  // well-defined and the graph connected.
  const std::size_t seed = m_attach + 1;
  for (std::size_t i = 0; i < seed; ++i) {
    for (std::size_t j = i + 1; j < seed; ++j) {
      const auto u = static_cast<NodeId>(i);
      const auto v = static_cast<NodeId>(j);
      pairs.insert(u, v);
      g.add_channel(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (std::size_t i = seed; i < n; ++i) {
    const auto u = static_cast<NodeId>(i);
    std::size_t added = 0;
    std::size_t attempts = 0;
    while (added < m_attach && attempts < 64 * m_attach) {
      ++attempts;
      const NodeId v = endpoints[rng.next_below(endpoints.size())];
      if (v == u || pairs.contains(u, v)) continue;
      pairs.insert(u, v);
      g.add_channel(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
      ++added;
    }
  }
  g.finalize();
  return g;
}

Graph erdos_renyi(std::size_t n, std::size_t channels, Rng& rng) {
  if (n < 2) throw std::invalid_argument("erdos_renyi: need n >= 2");
  const std::size_t max_channels = n * (n - 1) / 2;
  if (channels > max_channels) {
    throw std::invalid_argument("erdos_renyi: too many channels requested");
  }
  Graph g(n);
  PairSet pairs;
  std::size_t added = 0;
  while (added < channels) {
    const auto u = static_cast<NodeId>(rng.next_below(n));
    const auto v = static_cast<NodeId>(rng.next_below(n));
    if (u == v || !pairs.insert(u, v)) continue;
    g.add_channel(u, v);
    ++added;
  }
  g.finalize();
  return g;
}

Graph scale_free(std::size_t n, std::size_t channels, Rng& rng) {
  if (n < 2 || channels + 1 < n) {
    throw std::invalid_argument("scale_free: need channels >= n - 1");
  }
  // Start from a BA graph whose attach count approximates the target mean
  // degree, then add preferential extras (or stop early) to hit the exact
  // channel count.
  std::size_t m_attach = std::max<std::size_t>(1, channels / n);
  m_attach = std::min(m_attach, n - 1);
  Graph ba = barabasi_albert(n, m_attach, rng);

  // Rebuild, tracking pairs, so we can top up to the exact count.
  Graph g(n);
  g.reserve_channels(channels);
  PairSet pairs;
  pairs.reserve(channels);
  std::vector<NodeId> endpoints;
  endpoints.reserve(2 * channels);
  std::size_t added = 0;
  for (std::size_t c = 0; c < ba.num_channels() && added < channels; ++c) {
    const EdgeId e = ba.channel_forward_edge(c);
    const NodeId u = ba.from(e);
    const NodeId v = ba.to(e);
    if (!pairs.insert(u, v)) continue;
    g.add_channel(u, v);
    endpoints.push_back(u);
    endpoints.push_back(v);
    ++added;
  }
  std::size_t attempts = 0;
  const std::size_t max_attempts = 256 * channels;
  while (added < channels && attempts < max_attempts) {
    ++attempts;
    // One endpoint preferential, the other uniform: keeps the degree
    // distribution heavy-tailed, like the hub-dominated PCN crawls.
    const NodeId u = endpoints[rng.next_below(endpoints.size())];
    const auto v = static_cast<NodeId>(rng.next_below(n));
    if (u == v || !pairs.insert(u, v)) continue;
    g.add_channel(u, v);
    endpoints.push_back(u);
    endpoints.push_back(v);
    ++added;
  }
  if (added < channels) {
    throw std::runtime_error("scale_free: could not place requested channels");
  }
  g.finalize();
  return g;
}

Graph ripple_like(Rng& rng) { return scale_free(1870, 8708, rng); }

Graph lightning_like(Rng& rng) { return scale_free(2511, 36016, rng); }

Graph scale_free_lightning(std::size_t nodes, Rng& rng) {
  if (nodes < 2) {
    throw std::invalid_argument("scale_free_lightning: need nodes >= 2");
  }
  // Preserve the crawled snapshot's density (36,016 channels over 2,511
  // nodes ≈ 14.34 channels/node) at the requested scale, so 10k-100k-node
  // synthetics stress the same mean degree the paper's Lightning runs do.
  const auto channels = std::max<std::size_t>(
      nodes - 1, static_cast<std::size_t>(nodes * 36016ull / 2511));
  return scale_free(nodes, channels, rng);
}

Graph ring_graph(std::size_t n) {
  assert(n >= 3);
  Graph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    g.add_channel(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n));
  }
  g.finalize();
  return g;
}

Graph line_graph(std::size_t n) {
  assert(n >= 2);
  Graph g(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    g.add_channel(static_cast<NodeId>(i), static_cast<NodeId>(i + 1));
  }
  g.finalize();
  return g;
}

Graph star_graph(std::size_t leaves) {
  assert(leaves >= 1);
  Graph g(leaves + 1);
  for (std::size_t i = 1; i <= leaves; ++i) {
    g.add_channel(0, static_cast<NodeId>(i));
  }
  g.finalize();
  return g;
}

Graph complete_graph(std::size_t n) {
  assert(n >= 2);
  Graph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      g.add_channel(static_cast<NodeId>(i), static_cast<NodeId>(j));
    }
  }
  g.finalize();
  return g;
}

Graph prune_low_degree(const Graph& g, std::size_t min_degree,
                       std::vector<NodeId>* old_to_new) {
  // Iteratively drop nodes whose count of *distinct* live neighbours is
  // below the threshold.
  std::vector<char> alive(g.num_nodes(), 1);
  bool changed = true;
  while (changed) {
    changed = false;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (!alive[u]) continue;
      std::set<NodeId> nbrs;
      for (EdgeId e : g.out_edges(u)) {
        const NodeId v = g.to(e);
        if (alive[v]) nbrs.insert(v);
      }
      if (nbrs.size() < min_degree) {
        alive[u] = 0;
        changed = true;
      }
    }
  }
  std::vector<NodeId> mapping(g.num_nodes(), kInvalidNode);
  Graph out;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (alive[u]) mapping[u] = out.add_node();
  }
  for (std::size_t c = 0; c < g.num_channels(); ++c) {
    const EdgeId e = g.channel_forward_edge(c);
    const NodeId u = g.from(e);
    const NodeId v = g.to(e);
    if (alive[u] && alive[v]) out.add_channel(mapping[u], mapping[v]);
  }
  if (old_to_new) *old_to_new = std::move(mapping);
  out.finalize();
  return out;
}

bool is_connected(const Graph& g) {
  if (g.num_nodes() == 0) return true;
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::uint32_t d) { return d == kUnreachable; });
}

std::vector<double> approx_betweenness(const Graph& g, std::size_t samples,
                                       std::uint64_t seed) {
  const std::size_t n = g.num_nodes();
  std::vector<double> score(n, 0.0);
  if (n < 3) return score;  // no interior nodes to relay through

  // Deterministic pivot set: a partial Fisher-Yates shuffle of the node
  // ids (samples == 0 or >= n degenerates to every node, i.e. exact
  // Brandes up to the uniform scaling rank consumers ignore).
  std::vector<NodeId> pivots(n);
  for (std::size_t i = 0; i < n; ++i) pivots[i] = static_cast<NodeId>(i);
  std::size_t pivot_count = n;
  if (samples > 0 && samples < n) {
    std::uint64_t mix = seed ^ 0xbf58476d1ce4e5b9ULL;
    Rng rng(splitmix64(mix));
    for (std::size_t i = 0; i < samples; ++i) {
      const std::size_t j = i + rng.next_below(n - i);
      std::swap(pivots[i], pivots[j]);
    }
    pivot_count = samples;
  }

  // Brandes: one BFS per pivot, then dependency accumulation in reverse
  // BFS order. delta[v] = sum over successors w of
  // sigma[v]/sigma[w] * (1 + delta[w]).
  std::vector<std::uint32_t> dist(n);
  std::vector<double> sigma(n), delta(n);
  std::vector<NodeId> order;
  order.reserve(n);
  for (std::size_t pi = 0; pi < pivot_count; ++pi) {
    const NodeId s = pivots[pi];
    std::fill(dist.begin(), dist.end(), kUnreachable);
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    order.clear();
    dist[s] = 0;
    sigma[s] = 1.0;
    order.push_back(s);
    for (std::size_t head = 0; head < order.size(); ++head) {
      const NodeId u = order[head];
      for (const EdgeId e : g.out_edges(u)) {
        const NodeId v = g.to(e);
        if (dist[v] == kUnreachable) {
          dist[v] = dist[u] + 1;
          order.push_back(v);
        }
        if (dist[v] == dist[u] + 1) sigma[v] += sigma[u];
      }
    }
    for (std::size_t i = order.size(); i-- > 1;) {  // skip the source
      const NodeId w = order[i];
      for (const EdgeId e : g.out_edges(w)) {
        const NodeId v = g.to(e);
        if (dist[v] + 1 == dist[w] && sigma[w] > 0) {
          delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
        }
      }
      if (w != s) score[w] += delta[w];
    }
  }
  return score;
}

}  // namespace flash

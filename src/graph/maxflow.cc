#include "graph/maxflow.h"

namespace flash {

MaxFlowResult edmonds_karp(const Graph& g, NodeId s, NodeId t,
                           const EdgeCapacity& capacity, Amount limit,
                           std::size_t max_paths) {
  assert(capacity);
  MaxFlowResult result;
  LegacyScratchLease lease;
  GraphScratch& scratch = lease.get();
  edmonds_karp_core(g, s, t, LegacyCallable<EdgeCapacity>{&capacity}, limit,
                    max_paths, scratch, result);
  return result;
}

}  // namespace flash

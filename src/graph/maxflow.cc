#include "graph/maxflow.h"

#include <algorithm>
#include <cassert>
#include <deque>

namespace flash {

MaxFlowResult edmonds_karp(const Graph& g, NodeId s, NodeId t,
                           const EdgeCapacity& capacity, Amount limit,
                           std::size_t max_paths) {
  assert(capacity);
  MaxFlowResult result;
  result.edge_flow.assign(g.num_edges(), 0);
  if (s == t) return result;

  // Residual capacity of edge e = capacity(e) - flow(e) + flow(reverse(e)):
  // pushing flow on the reverse direction frees capacity here. We track
  // residuals directly for O(1) updates.
  std::vector<Amount> residual(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) residual[e] = capacity(e);

  constexpr Amount kEps = 1e-12;
  while (max_paths == 0 || result.paths.size() < max_paths) {
    if (limit >= 0 && result.value >= limit) break;
    // BFS over edges with positive residual.
    std::vector<EdgeId> parent(g.num_nodes(), kInvalidEdge);
    std::vector<char> seen(g.num_nodes(), 0);
    std::deque<NodeId> queue;
    seen[s] = 1;
    queue.push_back(s);
    bool found = false;
    while (!queue.empty() && !found) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (EdgeId e : g.out_edges(u)) {
        const NodeId v = g.to(e);
        if (seen[v] || residual[e] <= kEps) continue;
        seen[v] = 1;
        parent[v] = e;
        if (v == t) {
          found = true;
          break;
        }
        queue.push_back(v);
      }
    }
    if (!found) break;

    // Extract the augmenting path and its bottleneck.
    Path path;
    Amount bottleneck = std::numeric_limits<Amount>::max();
    for (NodeId cur = t; cur != s; cur = g.from(parent[cur])) {
      const EdgeId e = parent[cur];
      path.push_back(e);
      bottleneck = std::min(bottleneck, residual[e]);
    }
    std::reverse(path.begin(), path.end());
    if (limit >= 0) bottleneck = std::min(bottleneck, limit - result.value);
    assert(bottleneck > 0);

    for (EdgeId e : path) {
      residual[e] -= bottleneck;
      residual[g.reverse(e)] += bottleneck;
      result.edge_flow[e] += bottleneck;
    }
    result.value += bottleneck;
    result.paths.push_back(std::move(path));
    result.path_amounts.push_back(bottleneck);
  }

  // Report net flow per edge (cancel opposite directions).
  for (EdgeId e = 0; e < g.num_edges(); e += 2) {
    const EdgeId r = g.reverse(e);
    const Amount net = result.edge_flow[e] - result.edge_flow[r];
    result.edge_flow[e] = std::max<Amount>(net, 0);
    result.edge_flow[r] = std::max<Amount>(-net, 0);
  }
  return result;
}

}  // namespace flash

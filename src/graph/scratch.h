// Reusable, allocation-free workspaces for the graph-algorithm core.
//
// Every graph query (dijkstra, bfs, yen, edge-disjoint, maxflow, elephant
// probing) needs O(V)/O(E) working state. Allocating it per call dominates
// the per-transaction cost of a simulation and serializes multi-core sweeps
// on the allocator. A GraphScratch owns that state once and is reused across
// queries: per-query "clearing" is an O(1) epoch bump (StampedArray), heap
// and queue storage keeps its capacity, and paths are recycled through a
// pool. After a short warm-up a scratch performs zero heap allocations no
// matter how many queries run through it.
//
// Ownership and threading contract:
//  - A scratch is NOT thread-safe and has hard thread affinity: it may only
//    be used by one thread at a time. Each concurrently running router /
//    sweep-engine worker owns its own scratch (FlashRouter embeds one), the
//    same way each owns its own Rng and MiceRoutingTable.
//  - A scratch is graph-agnostic: arrays grow to the largest graph seen and
//    are epoch-reset per query, so one scratch can serve queries on
//    different graphs.
//  - The legacy allocation-per-call entry points (dijkstra(), bfs_path(),
//    yen_k_shortest_paths(), ...) remain as thin wrappers over a
//    thread-local scratch (see internal_graph_scratch()), so existing
//    callers get the fast path for free.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "graph/types.h"

namespace flash {

/// Dense index -> T map whose clear() is O(1): each slot carries the epoch
/// it was last written in, and only slots stamped with the current epoch
/// count as present. reset() bumps the epoch (O(n) work happens only when
/// the backing arrays first grow to a new size, or once every 2^32 resets
/// when the epoch counter wraps and all stamps must be re-zeroed).
template <typename T>
class StampedArray {
 public:
  /// Prepares the array for a new query over `n` indices, forgetting all
  /// previous entries in O(1).
  void reset(std::size_t n) {
    if (vals_.size() < n) {
      vals_.resize(n);
      stamp_.resize(n, 0);
    }
    if (++epoch_ == 0) {  // wrapped: stamps from 2^32 resets ago are stale
      std::fill(stamp_.begin(), stamp_.end(), 0u);
      epoch_ = 1;
    }
  }

  bool contains(std::size_t i) const { return stamp_[i] == epoch_; }

  void set(std::size_t i, const T& v) {
    stamp_[i] = epoch_;
    vals_[i] = v;
  }

  /// Value at i. Precondition: contains(i).
  const T& get(std::size_t i) const { return vals_[i]; }

  /// Value at i, or `fallback` when the slot was not written this epoch.
  T get_or(std::size_t i, const T& fallback) const {
    return contains(i) ? vals_[i] : fallback;
  }

  /// Mutable slot, value-initialized on first touch this epoch.
  T& slot(std::size_t i) {
    if (stamp_[i] != epoch_) {
      stamp_[i] = epoch_;
      vals_[i] = T{};
    }
    return vals_[i];
  }

  /// Raw view for the hottest search loops: pointers and the epoch in
  /// locals, so stores through the view cannot force the compiler to
  /// reload the epoch or array bases each iteration (a plain uint32 store
  /// may alias the uint32 epoch_ member under type-based alias analysis).
  /// Valid until the next reset(); reads and writes stay coherent with the
  /// owning array's own accessors.
  struct View {
    std::uint32_t* stamp;
    T* vals;
    std::uint32_t epoch;

    bool contains(std::size_t i) const { return stamp[i] == epoch; }
    void set(std::size_t i, const T& v) const {
      stamp[i] = epoch;
      vals[i] = v;
    }
    const T& get(std::size_t i) const { return vals[i]; }
    T get_or(std::size_t i, const T& fallback) const {
      return contains(i) ? vals[i] : fallback;
    }
  };
  View view() { return {stamp_.data(), vals_.data(), epoch_}; }

 private:
  std::vector<T> vals_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 0;
};

/// Recycling pool of Path buffers. alloc() hands out cleared paths whose
/// heap capacity survives reset(), so steady-state path construction is
/// allocation-free. Backed by a deque: references returned by alloc()/at()
/// stay valid across later alloc() calls (Yen holds several at once).
class PathPool {
 public:
  void reset() { used_ = 0; }

  /// A cleared path with retained capacity. Stable reference.
  Path& alloc() {
    if (used_ == paths_.size()) paths_.emplace_back();
    Path& p = paths_[used_++];
    p.clear();
    return p;
  }

  /// Returns the most recently alloc()ed path to the pool.
  void pop() { --used_; }

  Path& at(std::size_t i) { return paths_[i]; }
  const Path& at(std::size_t i) const { return paths_[i]; }
  std::size_t size() const { return used_; }

 private:
  std::deque<Path> paths_;
  std::size_t used_ = 0;
};

/// Entry of the dijkstra frontier heap (min-heap on dist via std::greater,
/// exactly mirroring the std::priority_queue the pre-scratch implementation
/// used, so relaxation order — and thus tie-breaking — is bit-identical).
struct DistEntry {
  double dist;
  NodeId node;
  bool operator>(const DistEntry& o) const { return dist > o.dist; }
};

/// One reusable workspace for all graph algorithms. Plain struct: the
/// algorithm cores in graph/*.h are the only intended users of the fields;
/// callers just construct one and thread it through. See the file comment
/// for the ownership/threading contract.
struct GraphScratch {
  // --- Per-query node state (epoch-reset by each search) ---------------
  StampedArray<double> dist;        // dijkstra tentative distances
  StampedArray<std::uint32_t> hops; // bfs hop counts
  StampedArray<EdgeId> parent;      // discovering edge per node ("seen")

  // --- Ban marks (independent epochs: set once, survive the inner
  //     searches of a composite algorithm like Yen's spur loop) ----------
  StampedArray<char> node_ban;
  StampedArray<char> edge_ban;

  // --- Search containers (capacity retained across queries) ------------
  std::vector<NodeId> bfs_queue;    // FIFO ring, head index is query-local
  std::vector<DistEntry> heap;      // dijkstra frontier (push/pop_heap)

  // --- Path construction ------------------------------------------------
  PathPool pool;                    // recycled path buffers
  std::vector<NodeId> node_buf;     // path -> node sequence scratch

  // --- Yen workspace ----------------------------------------------------
  std::vector<std::uint32_t> yen_result;    // pool indices of emitted paths
  std::vector<std::uint64_t> yen_hash;      // path hash, parallel to pool
  std::vector<std::uint32_t> yen_dev;       // deviation index, parallel
  // Open-addressing known-path set: slot = pool idx + 1, live only when the
  // parallel epoch stamp matches yen_epoch (so per-query reset is O(1)).
  std::vector<std::uint32_t> yen_known;
  std::vector<std::uint32_t> yen_known_epoch;
  std::uint32_t yen_epoch = 0;
  struct YenCandidate {
    double cost;
    std::uint32_t idx;  // pool index
  };
  std::vector<YenCandidate> yen_heap;       // candidate min-heap storage
  std::vector<double> yen_bound_buf;        // spur-cutoff selection scratch

  // --- Flow / probing workspace ----------------------------------------
  StampedArray<Amount> edge_amount; // sparse residuals (elephant probing)
  std::vector<Amount> amount_buf;   // dense per-edge amounts (maxflow, net)
  std::vector<Amount> balance_buf;  // probe_path results (mice/elephant)
  std::vector<std::pair<EdgeId, Amount>> flow_buf;  // netted flow (EdgeAmount)
  std::vector<std::size_t> index_buf;  // path-order shuffling (mice)
  std::vector<Path> path_list_buf;  // yen output staging (table fill)

  // --- Re-entrancy detection (see LegacyScratchLease) ------------------
  bool legacy_entry_active = false;
};

/// The thread-local scratch behind the legacy (scratch-less) entry points.
/// Re-entrant composition is safe only through the *_core functions; the
/// wrappers never call each other through this scratch.
GraphScratch& internal_graph_scratch();

/// Scratch lease for the legacy wrappers. Normally hands out the shared
/// thread-local scratch (allocation-free steady state). If the caller is
/// already inside a legacy call — a user weight/filter callback invoking
/// another legacy graph function — the shared scratch is mid-query, so the
/// lease falls back to a private short-lived scratch instead: the legacy
/// API stays fully re-entrant (as its allocation-per-call predecessor
/// was), just paying allocations on that rare nested path.
class LegacyScratchLease {
 public:
  LegacyScratchLease() {
    GraphScratch& shared = internal_graph_scratch();
    if (shared.legacy_entry_active) {
      owned_ = std::make_unique<GraphScratch>();
      scratch_ = owned_.get();
    } else {
      shared.legacy_entry_active = true;
      scratch_ = &shared;
    }
  }
  ~LegacyScratchLease() {
    if (!owned_) scratch_->legacy_entry_active = false;
  }
  LegacyScratchLease(const LegacyScratchLease&) = delete;
  LegacyScratchLease& operator=(const LegacyScratchLease&) = delete;

  GraphScratch& get() noexcept { return *scratch_; }

 private:
  GraphScratch* scratch_;
  std::unique_ptr<GraphScratch> owned_;
};

/// Adapts a legacy std::function-style callback (weight, filter, capacity)
/// for the templated algorithm cores: one adapter for all wrappers, same
/// one-indirect-call-per-edge cost the pre-scratch implementations had.
template <typename Fn>
struct LegacyCallable {
  const Fn* fn;
  auto operator()(EdgeId e) const { return (*fn)(e); }
};

/// Copies `p` into slot `i` of `out`, reusing the existing element's heap
/// buffer when possible. Callers emit slots 0..n-1 and then shrink with
/// `out.resize(n)`, so a vector reused across queries stops allocating once
/// its capacity (outer and per-element) has warmed up.
inline void assign_path_slot(std::vector<Path>& out, std::size_t i,
                             const Path& p) {
  if (i < out.size()) {
    out[i].assign(p.begin(), p.end());
  } else {
    out.push_back(p);
  }
}

}  // namespace flash

// Message-level emulation of the prototype offchain network (§5.1).
//
// Re-creation of the paper's Go/TCP prototype as a deterministic
// discrete-event system: each node is an independent actor that owns the
// balances of its *outgoing* channel directions and processes one message
// at a time (per-node serialization models CPU contention on the shared
// testbed server). Intermediate-node and receiver behaviour — balance
// checks, holds, NACKs, reverse-direction crediting — is implemented here
// exactly as §5.1 describes; sender-side routing logic lives in
// sessions.h and communicates only through messages.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "testbed/event_queue.h"
#include "testbed/message.h"

namespace flash::testbed {

struct NetworkConfig {
  /// One-hop propagation + transmission delay (ms). The prototype ran all
  /// nodes on one server over loopback TCP (§5.2), so propagation is tiny.
  double link_latency_ms = 0.05;
  /// Per-message processing cost at a node (ms) for state-mutating
  /// messages (COMMIT/CONFIRM/REVERSE and their ACKs): these update
  /// balances and, in a real deployment, involve contract/signature work.
  /// Processing dominates on a shared server — the paper's metric is
  /// *processing delay* — so protocols that push fewer mutating messages
  /// through the endpoints settle faster. Nodes are serialized: one
  /// message at a time.
  double node_processing_ms = 1.0;
  /// Processing cost of read-only PROBE/PROBE_ACK messages (they only copy
  /// a balance into the payload).
  double probe_processing_ms = 1.0;
  /// Safety net for protocol bugs.
  std::uint64_t max_events_per_payment = 2'000'000;
};

class Network {
 public:
  Network(const Graph& graph, NetworkConfig config = {});

  const Graph& graph() const noexcept { return *graph_; }
  EventQueue& queue() noexcept { return queue_; }

  // --- Balance management (test/verification access) ---------------------

  void set_balance(EdgeId e, Amount amount) { balance_.at(e) = amount; }
  Amount balance(EdgeId e) const { return balance_.at(e); }
  Amount total_balance() const;

  /// Sum of funds currently held by pending (uncommitted) sub-payments.
  Amount total_pending() const;

  /// First channel edge from u to v; kInvalidEdge if none.
  EdgeId edge_between(NodeId u, NodeId v) const;

  // --- Sender API ---------------------------------------------------------

  /// Terminal messages (the ones §5.1 routes back to the payment's sender)
  /// are delivered to this callback: PROBE_ACK, COMMIT_ACK, COMMIT_NACK,
  /// CONFIRM_ACK, REVERSE_ACK.
  using SenderCallback = std::function<void(const Message&)>;
  void register_session(std::uint64_t trans_id, SenderCallback cb);
  void unregister_session(std::uint64_t trans_id);

  /// Sender (path[0]) emits a fresh PROBE / COMMIT / CONFIRM / REVERSE.
  /// The message enters the sender's own processing queue, so its cost is
  /// accounted like any other message.
  void originate(Message msg);

  std::uint64_t fresh_trans_id() noexcept { return next_trans_id_++; }

  // --- Accounting ---------------------------------------------------------

  std::uint64_t messages_processed() const noexcept { return messages_; }
  std::uint64_t messages_of(MsgType t) const {
    return per_type_[static_cast<std::size_t>(t)];
  }

 private:
  const Graph* graph_;
  NetworkConfig config_;
  EventQueue queue_;
  std::vector<Amount> balance_;          // per directed edge, owned by from()
  std::vector<double> busy_until_;       // per node
  /// Pending held funds: node -> (trans_id -> (edge, amount)).
  std::vector<std::unordered_map<std::uint64_t, std::pair<EdgeId, Amount>>>
      pending_;
  std::unordered_map<std::uint64_t, SenderCallback> sessions_;
  std::unordered_map<std::uint64_t, EdgeId> edge_lookup_;  // (u,v) -> edge
  std::uint64_t next_trans_id_ = 1;
  std::uint64_t messages_ = 0;
  std::uint64_t per_type_[9] = {};

  /// Schedules processing of `msg` at node `at` (applies per-node busy
  /// serialization and processing cost, then runs the semantics).
  void arrive(NodeId at, Message msg);

  /// Protocol semantics of §5.1, run when the node "executes" the message.
  void process(NodeId at, Message msg);

  void forward(Message msg);   // to path[hop + 1]
  void backward(Message msg);  // to path[hop - 1]
  void deliver_to_sender(Message msg);

  EdgeId forward_edge(const Message& msg, std::size_t hop) const;
};

}  // namespace flash::testbed

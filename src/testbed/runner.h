// Testbed experiment runner (§5.2-§5.3).
//
// Builds a Watts-Strogatz network with capacities drawn from an interval,
// replays 10,000 Ripple-sized transactions sequentially through the
// message-level emulation, and measures success volume, success ratio and
// per-payment processing delay for Flash, Spider and SP — the quantities
// plotted in Figs. 12 and 13.
#pragma once

#include <cstdint>
#include <string>

#include "graph/types.h"
#include "testbed/network.h"

namespace flash::testbed {

enum class TestbedScheme { kFlash, kSpider, kShortestPath };

std::string testbed_scheme_name(TestbedScheme s);

struct TestbedConfig {
  TestbedScheme scheme = TestbedScheme::kFlash;
  std::size_t nodes = 50;
  Amount cap_lo = 1000;
  Amount cap_hi = 1500;
  std::size_t num_transactions = 10000;
  std::uint64_t seed = 1;
  /// Flash parameters (paper §5.2): threshold at the 90th size percentile,
  /// k = 20 elephant paths, m = 4 mice paths.
  double mice_quantile = 0.9;
  std::size_t k_elephant_paths = 20;
  std::size_t m_mice_paths = 4;
  /// Spider: 4 edge-disjoint shortest paths.
  std::size_t spider_paths = 4;
  NetworkConfig net;
};

struct TestbedResult {
  std::size_t transactions = 0;
  std::size_t successes = 0;
  Amount volume_attempted = 0;
  Amount volume_succeeded = 0;
  double total_delay_ms = 0;
  double mice_delay_ms = 0;
  /// Delay summed over *settled* (successful) payments only — the
  /// settlement-time view of processing delay.
  double success_delay_ms = 0;
  double mice_success_delay_ms = 0;
  std::size_t mice_transactions = 0;
  std::size_t mice_successes = 0;
  std::uint64_t messages = 0;

  double success_ratio() const {
    return transactions ? static_cast<double>(successes) / transactions : 0;
  }
  double avg_delay_ms() const {
    return transactions ? total_delay_ms / transactions : 0;
  }
  double avg_mice_delay_ms() const {
    return mice_transactions ? mice_delay_ms / mice_transactions : 0;
  }
  double avg_success_delay_ms() const {
    return successes ? success_delay_ms / successes : 0;
  }
  double avg_mice_success_delay_ms() const {
    return mice_successes ? mice_success_delay_ms / mice_successes : 0;
  }
};

/// Runs one testbed experiment. Deterministic in config.seed. Throws
/// std::logic_error if funds conservation is violated at the end.
TestbedResult run_testbed(const TestbedConfig& config);

}  // namespace flash::testbed

#include "testbed/network.h"

#include <cassert>
#include <stdexcept>

namespace flash::testbed {

namespace {
std::uint64_t pair_key(NodeId u, NodeId v) {
  return (static_cast<std::uint64_t>(u) << 32) | v;
}
}  // namespace

Network::Network(const Graph& graph, NetworkConfig config)
    : graph_(&graph),
      config_(config),
      balance_(graph.num_edges(), 0),
      busy_until_(graph.num_nodes(), 0),
      pending_(graph.num_nodes()) {
  for (EdgeId e = 0; e < graph.num_edges(); ++e) {
    edge_lookup_.emplace(pair_key(graph.from(e), graph.to(e)), e);
  }
}

Amount Network::total_balance() const {
  Amount total = 0;
  for (Amount b : balance_) total += b;
  return total;
}

Amount Network::total_pending() const {
  Amount total = 0;
  for (const auto& node_pending : pending_) {
    for (const auto& [id, part] : node_pending) total += part.second;
  }
  return total;
}

EdgeId Network::edge_between(NodeId u, NodeId v) const {
  const auto it = edge_lookup_.find(pair_key(u, v));
  return it == edge_lookup_.end() ? kInvalidEdge : it->second;
}

void Network::register_session(std::uint64_t trans_id, SenderCallback cb) {
  sessions_[trans_id] = std::move(cb);
}

void Network::unregister_session(std::uint64_t trans_id) {
  sessions_.erase(trans_id);
}

void Network::originate(Message msg) {
  if (msg.path.size() < 2) {
    throw std::invalid_argument("originate: path needs >= 2 nodes");
  }
  msg.hop = 0;
  const NodeId origin = msg.path.front();  // read before the move below
  arrive(origin, std::move(msg));
}

EdgeId Network::forward_edge(const Message& msg, std::size_t hop) const {
  const EdgeId e = edge_between(msg.path[hop], msg.path[hop + 1]);
  if (e == kInvalidEdge) {
    throw std::logic_error("testbed: path uses a non-existent channel");
  }
  return e;
}

void Network::arrive(NodeId at, Message msg) {
  // Per-node serialization: the node starts processing when it is free,
  // spends the per-type processing cost, and the semantics take effect at
  // the end.
  const bool read_only =
      msg.type == MsgType::kProbe || msg.type == MsgType::kProbeAck;
  const double cost = read_only ? config_.probe_processing_ms
                                : config_.node_processing_ms;
  const double start = std::max(queue_.now(), busy_until_[at]);
  const double done = start + cost;
  busy_until_[at] = done;
  queue_.schedule(done, [this, at, m = std::move(msg)]() mutable {
    process(at, std::move(m));
  });
}

void Network::forward(Message msg) {
  ++msg.hop;
  const NodeId next = msg.path[msg.hop];
  queue_.schedule_in(config_.link_latency_ms,
                     [this, next, m = std::move(msg)]() mutable {
                       arrive(next, std::move(m));
                     });
}

void Network::backward(Message msg) {
  assert(msg.hop > 0);
  --msg.hop;
  const NodeId prev = msg.path[msg.hop];
  queue_.schedule_in(config_.link_latency_ms,
                     [this, prev, m = std::move(msg)]() mutable {
                       arrive(prev, std::move(m));
                     });
}

void Network::deliver_to_sender(Message msg) {
  const auto it = sessions_.find(msg.trans_id);
  if (it == sessions_.end()) return;  // session gone; drop
  // Copy the callback: the handler may unregister (and erase) itself.
  const SenderCallback cb = it->second;
  cb(msg);
}

void Network::process(NodeId at, Message msg) {
  ++messages_;
  ++per_type_[static_cast<std::size_t>(msg.type)];
  const std::size_t last = msg.path.size() - 1;

  switch (msg.type) {
    case MsgType::kProbe: {
      if (msg.hop < last) {
        // Intermediate (and sender): append the forward balance, relay.
        const EdgeId e = forward_edge(msg, msg.hop);
        msg.capacity.push_back(balance_[e]);
        forward(std::move(msg));
      } else {
        // Receiver: reverse into PROBE_ACK (§5.1), contributing the
        // reverse balance of the last channel so the sender learns both
        // directions of every probed channel (Algorithm 1 lines 17-22).
        msg.type = MsgType::kProbeAck;
        const EdgeId back = edge_between(at, msg.path[msg.hop - 1]);
        if (back != kInvalidEdge) {
          msg.capacity_reverse.push_back(balance_[back]);
        }
        backward(std::move(msg));
      }
      return;
    }
    case MsgType::kProbeAck: {
      // Each node on the way back appends the balance of its reverse
      // channel (toward the previous node on the forward path), so the
      // sender learns both directions (Algorithm 1 lines 17-22).
      if (msg.hop > 0) {
        const EdgeId back = edge_between(at, msg.path[msg.hop - 1]);
        if (back != kInvalidEdge) {
          msg.capacity_reverse.push_back(balance_[back]);
        }
        backward(std::move(msg));
      } else {
        deliver_to_sender(std::move(msg));
      }
      return;
    }
    case MsgType::kCommit: {
      if (msg.hop < last) {
        const EdgeId e = forward_edge(msg, msg.hop);
        if (balance_[e] + 1e-9 >= msg.commit) {
          balance_[e] -= msg.commit;
          pending_[at][msg.trans_id] = {e, msg.commit};
          forward(std::move(msg));
        } else {
          // Insufficient balance: NACK back immediately (§5.1).
          msg.type = MsgType::kCommitNack;
          msg.fail_hop = msg.hop;
          if (msg.hop == 0) {
            deliver_to_sender(std::move(msg));
          } else {
            backward(std::move(msg));
          }
        }
      } else {
        // Receiver: sub-payment arrived; ACK back along the reversed path.
        msg.type = MsgType::kCommitAck;
        backward(std::move(msg));
      }
      return;
    }
    case MsgType::kCommitAck:
    case MsgType::kCommitNack: {
      if (msg.hop > 0) {
        backward(std::move(msg));
      } else {
        deliver_to_sender(std::move(msg));
      }
      return;
    }
    case MsgType::kConfirm: {
      // Intermediate nodes simply relay (§5.1).
      if (msg.hop < last) {
        forward(std::move(msg));
      } else {
        // Receiver: the funds of the final channel have arrived; credit
        // the reverse direction before acknowledging back.
        const EdgeId credit = edge_between(at, msg.path[msg.hop - 1]);
        if (credit != kInvalidEdge) balance_[credit] += msg.commit;
        pending_[at].erase(msg.trans_id);
        msg.type = MsgType::kConfirmAck;
        backward(std::move(msg));
      }
      return;
    }
    case MsgType::kConfirmAck: {
      // §5.1: each node processes CONFIRM_ACK "by adding the committed
      // funds of this sub-payment to the channel in the reverse
      // direction". Funds flowed path[hop-1] -> at, so `at` credits its
      // own direction (at -> path[hop-1]); the pending hold this node made
      // on its forward channel (if any) is retired for good - the funds
      // have permanently moved.
      if (msg.hop > 0) {
        const EdgeId credit = edge_between(at, msg.path[msg.hop - 1]);
        if (credit != kInvalidEdge) balance_[credit] += msg.commit;
      }
      pending_[at].erase(msg.trans_id);
      if (msg.hop > 0) {
        backward(std::move(msg));
      } else {
        deliver_to_sender(std::move(msg));
      }
      return;
    }
    case MsgType::kReverse: {
      // Roll back held funds up to fail_hop (exclusive); for fully
      // committed sub-payments fail_hop == path.size()-1 (receiver).
      const auto it = pending_[at].find(msg.trans_id);
      if (it != pending_[at].end()) {
        balance_[it->second.first] += it->second.second;
        pending_[at].erase(it);
      }
      if (msg.hop < msg.fail_hop && msg.hop < last) {
        forward(std::move(msg));
      } else {
        // Horizon reached: acknowledge back to the sender.
        msg.type = MsgType::kReverseAck;
        if (msg.hop == 0) {
          deliver_to_sender(std::move(msg));
        } else {
          backward(std::move(msg));
        }
      }
      return;
    }
    case MsgType::kReverseAck: {
      if (msg.hop > 0) {
        backward(std::move(msg));
      } else {
        deliver_to_sender(std::move(msg));
      }
      return;
    }
  }
  throw std::logic_error("testbed: unknown message type");
}

}  // namespace flash::testbed

// Deterministic discrete-event scheduler for the testbed emulation.
//
// Events at equal timestamps run in insertion order (a monotone sequence
// number breaks ties), so runs are bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace flash::testbed {

class EventQueue {
 public:
  using Event = std::function<void()>;

  /// Current simulation time (milliseconds).
  double now() const noexcept { return now_; }

  /// Schedules `event` at absolute time `when` (>= now).
  void schedule(double when, Event event);

  /// Schedules `event` `delay` after now.
  void schedule_in(double delay, Event event) {
    schedule(now_ + delay, std::move(event));
  }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t pending() const noexcept { return heap_.size(); }

  /// Runs the earliest event; returns false when idle.
  bool step();

  /// Runs until no events remain. `max_events` guards against runaway
  /// protocols (throws std::runtime_error when exceeded; 0 = unlimited).
  void run_until_idle(std::uint64_t max_events = 0);

 private:
  struct Entry {
    double when;
    std::uint64_t seq;
    Event event;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  double now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
};

}  // namespace flash::testbed

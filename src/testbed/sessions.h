// Sender-side payment sessions: the routing algorithms of the prototype.
//
// Each session drives exactly one payment through the message protocol of
// §5.1 — it can only originate PROBE / COMMIT / CONFIRM / REVERSE messages
// and react to the ACK/NACK messages the network routes back; channel
// balances are never read directly (the sender knows the topology, not the
// balances — the paper's premise). Three algorithms are implemented, the
// same set the testbed evaluation compares (§5.2): Flash, Spider, and SP.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "ledger/fee_policy.h"
#include "lp/fee_min.h"
#include "testbed/network.h"
#include "util/rng.h"

namespace flash::testbed {

/// Node-id path (source-routing form used in messages).
using NodePath = std::vector<NodeId>;

/// Base class: lifecycle + the two-phase commit machinery shared by all
/// algorithms (phase 1 COMMIT all sub-payments; phase 2 CONFIRM all or
/// REVERSE all, §5.1).
class PaymentSession {
 public:
  using DoneCallback = std::function<void(bool success)>;

  PaymentSession(Network& net, Amount amount, DoneCallback done);
  virtual ~PaymentSession() = default;

  PaymentSession(const PaymentSession&) = delete;
  PaymentSession& operator=(const PaymentSession&) = delete;

  /// Begins the protocol. May complete synchronously (e.g. no path).
  virtual void start() = 0;

  bool finished() const noexcept { return finished_; }
  bool succeeded() const noexcept { return succeeded_; }
  Amount amount() const noexcept { return amount_; }

 protected:
  struct Part {
    std::uint64_t trans_id = 0;
    NodePath path;
    Amount amount = 0;
    /// Reversal horizon: number of hops that held funds and must be rolled
    /// back. SIZE_MAX (default) means the full path (fully committed part).
    std::size_t reverse_horizon = static_cast<std::size_t>(-1);
  };

  Network& net() noexcept { return *net_; }

  /// Runs two-phase commit over `parts`; calls finish() with the outcome.
  void run_two_phase(std::vector<Part> parts);

  /// Holds that already exist (committed sub-payments from an incremental
  /// protocol like Flash mice) can be confirmed/reversed directly.
  void confirm_parts(std::vector<Part> parts);
  void reverse_parts(std::vector<Part> parts,
                     std::function<void()> on_reversed);

  void finish(bool success);

  /// Registers `cb` for the terminal messages of `trans_id`.
  void listen(std::uint64_t trans_id, Network::SenderCallback cb);
  void unlisten(std::uint64_t trans_id);

 private:
  Network* net_;
  Amount amount_;
  DoneCallback done_;
  bool finished_ = false;
  bool succeeded_ = false;
  std::vector<std::uint64_t> listening_;

  // two-phase state
  std::vector<Part> tp_parts_;
  std::size_t tp_resolved_ = 0;
  bool tp_any_failed_ = false;
  std::unordered_map<std::uint64_t, std::size_t> tp_fail_hops_;
  std::size_t tp_acks_expected_ = 0;
  std::size_t tp_acks_seen_ = 0;

  void tp_on_commit_result(std::uint64_t trans_id, bool ok,
                           std::size_t fail_hop);
  void tp_settle();
};

/// SP: single fewest-hops path, full amount, no probing (§4.1/§5.2).
class SpSession : public PaymentSession {
 public:
  SpSession(Network& net, NodePath path, Amount amount, DoneCallback done);
  void start() override;

 private:
  NodePath path_;
};

/// Spider: probe 4 edge-disjoint shortest paths in parallel, waterfill the
/// demand across the probed capacities, then two-phase commit.
class SpiderSession : public PaymentSession {
 public:
  SpiderSession(Network& net, std::vector<NodePath> paths, Amount amount,
                DoneCallback done);
  void start() override;

 private:
  std::vector<NodePath> paths_;
  std::vector<Amount> caps_;
  std::size_t probes_pending_ = 0;

  void on_probe_ack(std::size_t index, const Message& msg);
  void allocate_and_commit();
};

/// Flash mice: trial-and-error over the routing-table paths in random
/// order — send the full remainder without probing; on NACK, reverse,
/// probe, and commit the path's effective capacity (§3.3).
class FlashMiceSession : public PaymentSession {
 public:
  FlashMiceSession(Network& net, std::vector<NodePath> paths, Amount amount,
                   Rng& rng, DoneCallback done);
  void start() override;

 private:
  std::vector<NodePath> paths_;  // pre-shuffled
  std::size_t index_ = 0;
  Amount remaining_;
  std::vector<Part> held_;

  void try_next_path();
  void probe_then_partial(NodePath path);
};

/// Flash elephant: Algorithm 1 by messages — repeated BFS on the local
/// residual view + PROBE rounds, then the fee-minimizing LP split and
/// two-phase commit (§3.2).
class FlashElephantSession : public PaymentSession {
 public:
  FlashElephantSession(Network& net, const Graph& graph,
                       const FeeSchedule& fees, NodeId sender,
                       NodeId receiver, Amount amount, std::size_t max_paths,
                       DoneCallback done);
  void start() override;

 private:
  const Graph* graph_;
  const FeeSchedule* fees_;
  NodeId sender_;
  NodeId receiver_;
  std::size_t max_paths_;
  std::unordered_map<EdgeId, Amount> residual_;
  // Probed capacity matrix C in PROBE_ACK arrival order — the LP's
  // canonical constraint order, same convention as ElephantProbeResult.
  ProbedCapacities capacities_;
  std::vector<Path> edge_paths_;
  Amount flow_ = 0;

  void probe_round();
  void on_probe_ack(const Path& edge_path, const Message& msg);
  void split_and_commit();
};

}  // namespace flash::testbed

// Message format of the prototype's source-routing protocol (Table 1, §5.1).
//
// | Field    | Description                                         |
// |----------|-----------------------------------------------------|
// | TransID  | unique id of a (partial) payment                    |
// | Type     | message type                                        |
// | Path     | full path of this message (source routing)         |
// | Capacity | probed channel capacity, appended per hop           |
// | Commit   | committed amount of funds for this payment          |
//
// The prototype's nine message types realize probing and the two-phase
// commit protocol: PROBE/PROBE_ACK collect balances; COMMIT holds funds
// hop-by-hop (ACK from the receiver, NACK from the first node with
// insufficient balance); CONFIRM settles committed funds (the ACK credits
// reverse directions on its way back); REVERSE rolls held funds back.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.h"

namespace flash::testbed {

enum class MsgType : std::uint8_t {
  kProbe,
  kProbeAck,
  kCommit,
  kCommitAck,
  kCommitNack,
  kConfirm,
  kConfirmAck,
  kReverse,
  kReverseAck,
};

std::string to_string(MsgType t);

struct Message {
  std::uint64_t trans_id = 0;
  MsgType type = MsgType::kProbe;
  /// Node sequence from sender to receiver (source routing). Backward
  /// messages (…_ACK/_NACK) keep the same vector and walk it in reverse,
  /// mirroring the prototype's "reversed path" field without reallocating.
  std::vector<NodeId> path;
  /// Index into `path` of the node currently holding the message.
  std::size_t hop = 0;
  /// PROBE: balances of the forward channels, appended hop by hop;
  /// PROBE_ACK: balances of the reverse channels, appended on the way back.
  std::vector<Amount> capacity;
  std::vector<Amount> capacity_reverse;
  /// Amount of funds this (partial) payment commits.
  Amount commit = 0;
  /// COMMIT_NACK: index of the hop whose channel had insufficient balance
  /// (nodes with smaller index have already held funds). REVERSE reuses it
  /// as the reversal horizon.
  std::size_t fail_hop = 0;

  NodeId sender() const { return path.front(); }
  NodeId receiver() const { return path.back(); }
  std::size_t hops() const { return path.size() - 1; }
};

}  // namespace flash::testbed

#include "testbed/message.h"

namespace flash::testbed {

std::string to_string(MsgType t) {
  switch (t) {
    case MsgType::kProbe:
      return "PROBE";
    case MsgType::kProbeAck:
      return "PROBE_ACK";
    case MsgType::kCommit:
      return "COMMIT";
    case MsgType::kCommitAck:
      return "COMMIT_ACK";
    case MsgType::kCommitNack:
      return "COMMIT_NACK";
    case MsgType::kConfirm:
      return "CONFIRM";
    case MsgType::kConfirmAck:
      return "CONFIRM_ACK";
    case MsgType::kReverse:
      return "REVERSE";
    case MsgType::kReverseAck:
      return "REVERSE_ACK";
  }
  return "UNKNOWN";
}

}  // namespace flash::testbed

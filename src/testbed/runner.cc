#include "testbed/runner.h"

#include <cmath>
#include <memory>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "graph/bfs.h"
#include "graph/edge_disjoint.h"
#include "graph/yen.h"
#include "testbed/sessions.h"
#include "trace/workload.h"

namespace flash::testbed {

namespace {

/// Per-scheme static path provider (the sender-side path knowledge:
/// shortest paths for SP, edge-disjoint set for Spider, the mice routing
/// table for Flash). Paths depend only on the topology, so they are cached
/// across payments exactly like the prototype's local routing state.
/// Keys are pair_key(s, t) (graph/types.h, the shared checked helper).
///
/// The caches hold at most one entry per distinct (sender, receiver) pair
/// in the replayed trace, so they are naturally bounded by the trace
/// length; kMaxEntries is a backstop for adversarially long traces (a full
/// reset on overflow only costs recomputation, never correctness).
class PathProvider {
 public:
  /// Per-cache entry cap; ~1M pairs at most a few hundred MB of paths.
  static constexpr std::size_t kMaxEntries = 1u << 20;

  PathProvider(const Graph& graph) : graph_(&graph) {}

  const NodePath& shortest(NodeId s, NodeId t) {
    bound(sp_);
    auto it = sp_.find(pair_key(s, t));
    if (it == sp_.end()) {
      const Path p = bfs_path(*graph_, s, t);
      NodePath nodes;
      if (!p.empty()) nodes = graph_->path_nodes(p, s);
      it = sp_.emplace(pair_key(s, t), std::move(nodes)).first;
    }
    return it->second;
  }

  const std::vector<NodePath>& disjoint(NodeId s, NodeId t, std::size_t k) {
    bound(disjoint_);
    auto it = disjoint_.find(pair_key(s, t));
    if (it == disjoint_.end()) {
      std::vector<NodePath> node_paths;
      for (const Path& p : edge_disjoint_shortest_paths(*graph_, s, t, k)) {
        node_paths.push_back(graph_->path_nodes(p, s));
      }
      it = disjoint_.emplace(pair_key(s, t), std::move(node_paths)).first;
    }
    return it->second;
  }

  const std::vector<NodePath>& mice_table(NodeId s, NodeId t, std::size_t m) {
    bound(mice_);
    auto it = mice_.find(pair_key(s, t));
    if (it == mice_.end()) {
      std::vector<NodePath> node_paths;
      for (const Path& p : yen_k_shortest_paths(*graph_, s, t, m)) {
        node_paths.push_back(graph_->path_nodes(p, s));
      }
      it = mice_.emplace(pair_key(s, t), std::move(node_paths)).first;
    }
    return it->second;
  }

 private:
  template <typename Map>
  static void bound(Map& map) {
    if (map.size() >= kMaxEntries) map.clear();
  }

  const Graph* graph_;
  std::unordered_map<std::uint64_t, NodePath> sp_;
  std::unordered_map<std::uint64_t, std::vector<NodePath>> disjoint_;
  std::unordered_map<std::uint64_t, std::vector<NodePath>> mice_;
};

}  // namespace

std::string testbed_scheme_name(TestbedScheme s) {
  switch (s) {
    case TestbedScheme::kFlash:
      return "Flash";
    case TestbedScheme::kSpider:
      return "Spider";
    case TestbedScheme::kShortestPath:
      return "SP";
  }
  throw std::invalid_argument("unknown testbed scheme");
}

TestbedResult run_testbed(const TestbedConfig& config) {
  WorkloadConfig wc;
  wc.num_transactions = config.num_transactions;
  wc.seed = config.seed;
  const Workload workload =
      make_testbed_workload(config.nodes, config.cap_lo, config.cap_hi, wc);
  const Graph& graph = workload.graph();
  const Amount threshold = workload.size_quantile(config.mice_quantile);

  Network net(graph, config.net);
  {
    // Load the initial balances into the distributed nodes.
    const NetworkState init = workload.make_state();
    for (EdgeId e = 0; e < graph.num_edges(); ++e) {
      net.set_balance(e, init.balance(e));
    }
  }
  const Amount initial_total = net.total_balance();

  PathProvider paths(graph);
  Rng rng(config.seed ^ 0xf1a5f1a5ULL);
  TestbedResult result;

  for (const Transaction& tx : workload.transactions()) {
    const bool is_mouse = tx.amount < threshold;
    const double start = net.queue().now();
    bool success = false;
    std::unique_ptr<PaymentSession> session;
    const auto done = [&success](bool ok) { success = ok; };

    switch (config.scheme) {
      case TestbedScheme::kShortestPath: {
        session = std::make_unique<SpSession>(
            net, paths.shortest(tx.sender, tx.receiver), tx.amount, done);
        break;
      }
      case TestbedScheme::kSpider: {
        session = std::make_unique<SpiderSession>(
            net, paths.disjoint(tx.sender, tx.receiver, config.spider_paths),
            tx.amount, done);
        break;
      }
      case TestbedScheme::kFlash: {
        if (is_mouse) {
          session = std::make_unique<FlashMiceSession>(
              net, paths.mice_table(tx.sender, tx.receiver,
                                    config.m_mice_paths),
              tx.amount, rng, done);
        } else {
          session = std::make_unique<FlashElephantSession>(
              net, graph, workload.fees(), tx.sender, tx.receiver, tx.amount,
              config.k_elephant_paths, done);
        }
        break;
      }
    }

    session->start();
    net.queue().run_until_idle(config.net.max_events_per_payment);
    if (!session->finished()) {
      throw std::logic_error("testbed: session did not terminate");
    }
    const double delay = net.queue().now() - start;

    ++result.transactions;
    result.volume_attempted += tx.amount;
    result.total_delay_ms += delay;
    if (is_mouse) {
      ++result.mice_transactions;
      result.mice_delay_ms += delay;
    }
    if (success) {
      ++result.successes;
      result.volume_succeeded += tx.amount;
      result.success_delay_ms += delay;
      if (is_mouse) {
        ++result.mice_successes;
        result.mice_success_delay_ms += delay;
      }
    }
  }

  result.messages = net.messages_processed();

  // Funds conservation: everything held must have been released, and the
  // sum of all balances must equal the initial deposits.
  if (net.total_pending() > 1e-6) {
    throw std::logic_error("testbed: pending funds leaked");
  }
  if (std::abs(net.total_balance() - initial_total) >
      1e-6 * std::max<Amount>(1, initial_total)) {
    throw std::logic_error("testbed: funds conservation violated");
  }
  return result;
}

}  // namespace flash::testbed

#include "testbed/sessions.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "graph/bfs.h"
#include "lp/fee_min.h"
#include "routing/spider.h"

namespace flash::testbed {

namespace {
constexpr Amount kEps = 1e-9;
}

// ---------------------------------------------------------------------------
// PaymentSession base
// ---------------------------------------------------------------------------

PaymentSession::PaymentSession(Network& net, Amount amount, DoneCallback done)
    : net_(&net), amount_(amount), done_(std::move(done)) {}

void PaymentSession::finish(bool success) {
  if (finished_) return;
  finished_ = true;
  succeeded_ = success;
  for (const std::uint64_t id : listening_) net_->unregister_session(id);
  listening_.clear();
  if (done_) done_(success);
}

void PaymentSession::listen(std::uint64_t trans_id,
                            Network::SenderCallback cb) {
  net_->register_session(trans_id, std::move(cb));
  listening_.push_back(trans_id);
}

void PaymentSession::unlisten(std::uint64_t trans_id) {
  net_->unregister_session(trans_id);
  std::erase(listening_, trans_id);
}

void PaymentSession::run_two_phase(std::vector<Part> parts) {
  if (parts.empty()) {
    finish(false);
    return;
  }
  tp_parts_ = std::move(parts);
  tp_resolved_ = 0;
  tp_any_failed_ = false;
  tp_fail_hops_.clear();

  for (Part& part : tp_parts_) {
    part.trans_id = net_->fresh_trans_id();
    listen(part.trans_id, [this, id = part.trans_id](const Message& msg) {
      if (msg.type == MsgType::kCommitAck) {
        tp_on_commit_result(id, true, 0);
      } else if (msg.type == MsgType::kCommitNack) {
        tp_on_commit_result(id, false, msg.fail_hop);
      }
    });
  }
  // Originate all COMMITs (the sender serializes them; they travel in
  // parallel).
  for (const Part& part : tp_parts_) {
    Message m;
    m.trans_id = part.trans_id;
    m.type = MsgType::kCommit;
    m.path = part.path;
    m.commit = part.amount;
    net_->originate(std::move(m));
  }
}

void PaymentSession::tp_on_commit_result(std::uint64_t trans_id, bool ok,
                                         std::size_t fail_hop) {
  if (!ok) {
    tp_any_failed_ = true;
    tp_fail_hops_[trans_id] = fail_hop;
  }
  if (++tp_resolved_ < tp_parts_.size()) return;
  tp_settle();
}

void PaymentSession::tp_settle() {
  if (!tp_any_failed_) {
    confirm_parts(std::move(tp_parts_));
    return;
  }
  // At least one sub-payment failed: REVERSE everything (§5.1). Fully
  // committed parts reverse over the whole path; NACKed parts only up to
  // the hop that refused.
  std::vector<Part> to_reverse;
  for (Part& part : tp_parts_) {
    const auto it = tp_fail_hops_.find(part.trans_id);
    if (it == tp_fail_hops_.end()) {
      to_reverse.push_back(std::move(part));  // committed in full
    } else if (it->second > 0) {
      part.reverse_horizon = it->second;  // held up to the NACKing hop
      to_reverse.push_back(std::move(part));
    }
    // fail_hop == 0: the sender itself refused; nothing was held.
  }
  reverse_parts(std::move(to_reverse), [this] { finish(false); });
}

void PaymentSession::confirm_parts(std::vector<Part> parts) {
  if (parts.empty()) {
    finish(true);
    return;
  }
  tp_acks_expected_ = parts.size();
  tp_acks_seen_ = 0;
  for (const Part& part : parts) {
    listen(part.trans_id, [this](const Message& msg) {
      if (msg.type != MsgType::kConfirmAck) return;
      if (++tp_acks_seen_ == tp_acks_expected_) finish(true);
    });
    Message m;
    m.trans_id = part.trans_id;
    m.type = MsgType::kConfirm;
    m.path = part.path;
    m.commit = part.amount;
    net_->originate(std::move(m));
  }
}

void PaymentSession::reverse_parts(std::vector<Part> parts,
                                   std::function<void()> on_reversed) {
  if (parts.empty()) {
    on_reversed();
    return;
  }
  // Shared countdown across the REVERSE_ACKs.
  auto remaining = std::make_shared<std::size_t>(parts.size());
  for (const Part& part : parts) {
    listen(part.trans_id,
           [this, remaining, on_reversed](const Message& msg) {
             if (msg.type != MsgType::kReverseAck) return;
             if (--*remaining == 0) on_reversed();
           });
    Message m;
    m.trans_id = part.trans_id;
    m.type = MsgType::kReverse;
    m.path = part.path;
    m.commit = part.amount;
    m.fail_hop = std::min(part.reverse_horizon, part.path.size() - 1);
    net_->originate(std::move(m));
  }
}

// ---------------------------------------------------------------------------
// SP
// ---------------------------------------------------------------------------

SpSession::SpSession(Network& net, NodePath path, Amount amount,
                     DoneCallback done)
    : PaymentSession(net, amount, std::move(done)), path_(std::move(path)) {}

void SpSession::start() {
  if (path_.size() < 2 || amount() <= 0) {
    finish(false);
    return;
  }
  Part part;
  part.path = path_;
  part.amount = amount();
  run_two_phase({std::move(part)});
}

// ---------------------------------------------------------------------------
// Spider
// ---------------------------------------------------------------------------

SpiderSession::SpiderSession(Network& net, std::vector<NodePath> paths,
                             Amount amount, DoneCallback done)
    : PaymentSession(net, amount, std::move(done)), paths_(std::move(paths)) {}

void SpiderSession::start() {
  if (paths_.empty() || amount() <= 0) {
    finish(false);
    return;
  }
  caps_.assign(paths_.size(), 0);
  probes_pending_ = paths_.size();
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    const std::uint64_t id = net().fresh_trans_id();
    listen(id, [this, i](const Message& msg) {
      if (msg.type == MsgType::kProbeAck) on_probe_ack(i, msg);
    });
    Message m;
    m.trans_id = id;
    m.type = MsgType::kProbe;
    m.path = paths_[i];
    net().originate(std::move(m));
  }
}

void SpiderSession::on_probe_ack(std::size_t index, const Message& msg) {
  Amount cap = std::numeric_limits<Amount>::max();
  for (const Amount a : msg.capacity) cap = std::min(cap, a);
  caps_[index] = msg.capacity.empty() ? 0 : cap;
  if (--probes_pending_ == 0) allocate_and_commit();
}

void SpiderSession::allocate_and_commit() {
  const std::vector<Amount> alloc = SpiderRouter::waterfill(caps_, amount());
  const Amount placed =
      std::accumulate(alloc.begin(), alloc.end(), Amount{0});
  if (placed + kEps < amount()) {
    finish(false);  // not enough probed capacity; nothing was held
    return;
  }
  std::vector<Part> parts;
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    if (alloc[i] <= kEps) continue;
    Part part;
    part.path = paths_[i];
    part.amount = alloc[i];
    parts.push_back(std::move(part));
  }
  run_two_phase(std::move(parts));
}

// ---------------------------------------------------------------------------
// Flash mice
// ---------------------------------------------------------------------------

FlashMiceSession::FlashMiceSession(Network& net, std::vector<NodePath> paths,
                                   Amount amount, Rng& rng, DoneCallback done)
    : PaymentSession(net, amount, std::move(done)),
      paths_(std::move(paths)),
      remaining_(amount) {
  rng.shuffle(paths_);
}

void FlashMiceSession::start() {
  if (paths_.empty() || amount() <= 0) {
    finish(false);
    return;
  }
  try_next_path();
}

void FlashMiceSession::try_next_path() {
  if (remaining_ <= kEps) {
    confirm_parts(std::move(held_));
    return;
  }
  if (index_ >= paths_.size()) {
    reverse_parts(std::move(held_), [this] { finish(false); });
    return;
  }
  const NodePath path = paths_[index_];  // value: outlives the callbacks
  // Trial: the full remainder, no probe.
  const std::uint64_t id = net().fresh_trans_id();
  listen(id, [this, id, path](const Message& msg) {
    if (msg.type == MsgType::kCommitAck) {
      Part part;
      part.trans_id = id;
      part.path = path;
      part.amount = remaining_;
      held_.push_back(std::move(part));
      remaining_ = 0;
      confirm_parts(std::move(held_));
    } else if (msg.type == MsgType::kCommitNack) {
      unlisten(id);
      if (msg.fail_hop > 0) {
        // Roll back the partially held hops, then probe.
        Message rev;
        rev.trans_id = id;
        rev.type = MsgType::kReverse;
        rev.path = path;
        rev.fail_hop = msg.fail_hop;
        listen(id, [this, path](const Message& ack) {
          if (ack.type == MsgType::kReverseAck) probe_then_partial(path);
        });
        net().originate(std::move(rev));
      } else {
        probe_then_partial(path);
      }
    }
  });
  Message m;
  m.trans_id = id;
  m.type = MsgType::kCommit;
  m.path = path;
  m.commit = remaining_;
  net().originate(std::move(m));
}

void FlashMiceSession::probe_then_partial(NodePath path) {
  const std::uint64_t id = net().fresh_trans_id();
  listen(id, [this, path](const Message& msg) {
    if (msg.type != MsgType::kProbeAck) return;
    Amount cap = std::numeric_limits<Amount>::max();
    for (const Amount a : msg.capacity) cap = std::min(cap, a);
    if (msg.capacity.empty()) cap = 0;
    if (cap <= kEps) {
      ++index_;
      try_next_path();
      return;
    }
    const Amount part_amount = std::min(cap, remaining_);
    const std::uint64_t cid = net().fresh_trans_id();
    listen(cid, [this, cid, path, part_amount](const Message& cm) {
      if (cm.type == MsgType::kCommitAck) {
        Part part;
        part.trans_id = cid;
        part.path = path;
        part.amount = part_amount;
        held_.push_back(std::move(part));
        remaining_ -= part_amount;
        ++index_;
        try_next_path();
      } else if (cm.type == MsgType::kCommitNack) {
        // Balance changed between probe and commit: roll back and move on.
        unlisten(cid);
        if (cm.fail_hop > 0) {
          Message rev;
          rev.trans_id = cid;
          rev.type = MsgType::kReverse;
          rev.path = path;
          rev.fail_hop = cm.fail_hop;
          listen(cid, [this](const Message& ack) {
            if (ack.type == MsgType::kReverseAck) {
              ++index_;
              try_next_path();
            }
          });
          net().originate(std::move(rev));
        } else {
          ++index_;
          try_next_path();
        }
      }
    });
    Message cm;
    cm.trans_id = cid;
    cm.type = MsgType::kCommit;
    cm.path = path;
    cm.commit = part_amount;
    net().originate(std::move(cm));
  });
  Message m;
  m.trans_id = id;
  m.type = MsgType::kProbe;
  m.path = path;
  net().originate(std::move(m));
}

// ---------------------------------------------------------------------------
// Flash elephant
// ---------------------------------------------------------------------------

FlashElephantSession::FlashElephantSession(
    Network& net, const Graph& graph, const FeeSchedule& fees, NodeId sender,
    NodeId receiver, Amount amount, std::size_t max_paths, DoneCallback done)
    : PaymentSession(net, amount, std::move(done)),
      graph_(&graph),
      fees_(&fees),
      sender_(sender),
      receiver_(receiver),
      max_paths_(max_paths) {
  capacities_.reset(graph.num_edges());
}

void FlashElephantSession::start() {
  if (sender_ == receiver_ || amount() <= 0) {
    finish(false);
    return;
  }
  probe_round();
}

void FlashElephantSession::probe_round() {
  // Algorithm 1 probes up to k paths before checking the demand (no early
  // exit at f >= d), so the LP split has surplus capacity to choose from.
  if (edge_paths_.size() >= max_paths_) {
    split_and_commit();
    return;
  }
  const auto admit = [this](EdgeId e) {
    const auto it = residual_.find(e);
    return it == residual_.end() || it->second > kEps;
  };
  const Path edge_path = bfs_path(*graph_, sender_, receiver_, admit);
  if (edge_path.empty()) {
    split_and_commit();
    return;
  }
  const std::uint64_t id = net().fresh_trans_id();
  listen(id, [this, edge_path](const Message& msg) {
    if (msg.type == MsgType::kProbeAck) on_probe_ack(edge_path, msg);
  });
  Message m;
  m.trans_id = id;
  m.type = MsgType::kProbe;
  m.path = graph_->path_nodes(edge_path, sender_);
  net().originate(std::move(m));
}

void FlashElephantSession::on_probe_ack(const Path& edge_path,
                                        const Message& msg) {
  // capacity[i] is the forward balance of edge i; capacity_reverse[j]
  // covers forward edge (n-1-j) (appended receiver-first on the way back).
  const std::size_t n = edge_path.size();
  for (std::size_t i = 0; i < n && i < msg.capacity.size(); ++i) {
    const EdgeId e = edge_path[i];
    if (!capacities_.contains(e)) {
      capacities_.insert(e, msg.capacity[i]);
      residual_[e] = msg.capacity[i];
    }
  }
  for (std::size_t j = 0; j < n && j < msg.capacity_reverse.size(); ++j) {
    const EdgeId rev = graph_->reverse(edge_path[n - 1 - j]);
    if (!capacities_.contains(rev)) {
      capacities_.insert(rev, msg.capacity_reverse[j]);
      residual_[rev] = msg.capacity_reverse[j];
    }
  }
  Amount bottleneck = std::numeric_limits<Amount>::max();
  for (const EdgeId e : edge_path) {
    bottleneck = std::min(bottleneck, residual_[e]);
  }
  bottleneck = std::max<Amount>(bottleneck, 0);
  edge_paths_.push_back(edge_path);
  if (bottleneck > kEps) {
    flow_ += bottleneck;
    for (const EdgeId e : edge_path) {
      residual_[e] -= bottleneck;
      residual_[graph_->reverse(e)] += bottleneck;
    }
  }
  probe_round();
}

void FlashElephantSession::split_and_commit() {
  if (flow_ + kEps < amount() || edge_paths_.empty()) {
    finish(false);  // Algorithm 1 infeasible: nothing held, nothing to undo
    return;
  }
  SplitResult split =
      optimize_fee_split(*graph_, edge_paths_, amount(), capacities_, *fees_);
  if (!split.feasible) {
    split =
        sequential_split(*graph_, edge_paths_, amount(), capacities_, *fees_);
  }
  if (!split.feasible) {
    finish(false);
    return;
  }
  std::vector<Part> parts;
  for (std::size_t i = 0; i < edge_paths_.size(); ++i) {
    if (split.amounts[i] <= kEps) continue;
    Part part;
    part.path = graph_->path_nodes(edge_paths_[i], sender_);
    part.amount = split.amounts[i];
    parts.push_back(std::move(part));
  }
  run_two_phase(std::move(parts));
}

}  // namespace flash::testbed

#include "testbed/event_queue.h"

#include <stdexcept>
#include <utility>

namespace flash::testbed {

void EventQueue::schedule(double when, Event event) {
  if (when < now_) when = now_;  // clamp: no scheduling into the past
  heap_.push(Entry{when, next_seq_++, std::move(event)});
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the handle instead (Event is a small std::function).
  Entry entry = heap_.top();
  heap_.pop();
  now_ = entry.when;
  entry.event();
  return true;
}

void EventQueue::run_until_idle(std::uint64_t max_events) {
  std::uint64_t executed = 0;
  while (step()) {
    if (max_events != 0 && ++executed > max_events) {
      throw std::runtime_error("EventQueue: event budget exceeded");
    }
  }
}

}  // namespace flash::testbed

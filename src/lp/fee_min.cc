#include "lp/fee_min.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "lp/simplex.h"

namespace flash {

namespace {

/// Net flow coefficient of path p on directed edge e: +1 if p uses e,
/// -1 if p uses reverse(e), 0 otherwise (a simple path cannot use both).
double net_coeff(const Graph& g, const Path& p, EdgeId e) {
  const EdgeId rev = g.reverse(e);
  for (EdgeId pe : p) {
    if (pe == e) return 1.0;
    if (pe == rev) return -1.0;
  }
  return 0.0;
}

}  // namespace

SplitResult optimize_fee_split(const Graph& g, const std::vector<Path>& paths,
                               Amount demand, const CapacityMap& cap,
                               const FeeSchedule& fees) {
  SplitResult result;
  if (paths.empty() || demand <= 0) return result;

  // Scale amounts by the demand so variables are O(1) for the solver.
  const double scale = demand;

  LpProblem lp;
  lp.objective.resize(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    lp.objective[i] = fees.path_rate(paths[i]);
  }

  // Demand constraint: sum r_p = 1 (scaled).
  LpConstraint demand_con;
  demand_con.coeffs.assign(paths.size(), 1.0);
  demand_con.rel = Relation::kEq;
  demand_con.rhs = 1.0;
  lp.constraints.push_back(std::move(demand_con));

  // One capacity constraint per probed directed edge that some path uses.
  for (const auto& [edge, capacity] : cap) {
    LpConstraint con;
    con.coeffs.assign(paths.size(), 0.0);
    bool touched = false;
    for (std::size_t i = 0; i < paths.size(); ++i) {
      const double c = net_coeff(g, paths[i], edge);
      con.coeffs[i] = c;
      touched = touched || c != 0.0;
    }
    if (!touched) continue;
    con.rel = Relation::kLessEq;
    con.rhs = capacity / scale;
    lp.constraints.push_back(std::move(con));
  }

  const LpSolution sol = solve_lp(lp);
  if (sol.status != LpStatus::kOptimal) return result;

  result.feasible = true;
  result.amounts.resize(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    result.amounts[i] = sol.x[i] * scale;
  }
  result.total_fee = split_fee(fees, paths, result.amounts);
  return result;
}

SplitResult sequential_split(const Graph& g, const std::vector<Path>& paths,
                             Amount demand, const CapacityMap& cap,
                             const FeeSchedule& fees) {
  SplitResult result;
  if (paths.empty() || demand <= 0) return result;

  CapacityMap residual = cap;
  result.amounts.assign(paths.size(), 0);
  Amount remaining = demand;
  for (std::size_t i = 0; i < paths.size() && remaining > 1e-12; ++i) {
    // Joint residual bottleneck of this path.
    Amount bottleneck = remaining;
    for (EdgeId e : paths[i]) {
      const auto it = residual.find(e);
      if (it == residual.end()) {
        throw std::invalid_argument("sequential_split: edge missing from C");
      }
      bottleneck = std::min(bottleneck, it->second);
    }
    if (bottleneck <= 0) continue;
    result.amounts[i] = bottleneck;
    remaining -= bottleneck;
    for (EdgeId e : paths[i]) {
      residual[e] -= bottleneck;
      // Flow on e frees capacity on the reverse direction (offsetting).
      const auto rit = residual.find(g.reverse(e));
      if (rit != residual.end()) rit->second += bottleneck;
    }
  }
  if (remaining > 1e-9 * std::max<Amount>(1, demand)) {
    return result;  // infeasible: could not place the full demand
  }
  result.feasible = true;
  result.total_fee = split_fee(fees, paths, result.amounts);
  return result;
}

Amount split_fee(const FeeSchedule& fees, const std::vector<Path>& paths,
                 const std::vector<Amount>& amounts) {
  assert(paths.size() == amounts.size());
  Amount total = 0;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (amounts[i] <= 0) continue;
    total += fees.path_fee(paths[i], amounts[i]);
  }
  return total;
}

}  // namespace flash

#include "lp/fee_min.h"

#include <algorithm>
#include <cassert>

#include "lp/simplex.h"

namespace flash {

namespace {

/// Thread-local workspace behind the convenience/legacy overloads. The
/// split strategies take no user callbacks, so no re-entrancy lease is
/// needed (unlike the graph wrappers, see graph/scratch.h).
SplitWorkspace& internal_split_workspace() {
  thread_local SplitWorkspace ws;
  return ws;
}

/// Stages a legacy map through a ProbedCapacities in the map's iteration
/// order, so the emitted constraint order — and therefore the selected
/// optimal vertex — matches the historical map-based formulation exactly.
/// Keys outside [0, num_edges) cannot belong to any path on g and are
/// dropped (the legacy code carried them as dead constraints).
void stage_capacity_map(const Graph& g, const CapacityMap& cap,
                        ProbedCapacities& out) {
  out.reset(g.num_edges());
  for (const auto& [e, c] : cap) {
    if (e < g.num_edges() && !out.contains(e)) out.insert(e, c);
  }
}

}  // namespace

void optimize_fee_split_core(const Graph& g, const std::vector<Path>& paths,
                             Amount demand, const ProbedCapacities& cap,
                             const FeeSchedule& fees, SplitWorkspace& ws,
                             SplitResult& out) {
  out.feasible = false;
  out.amounts.clear();
  out.total_fee = 0;
  if (paths.empty() || demand <= 0) return;

  const std::size_t n = paths.size();
  const std::size_t ncap = cap.size();
  // Scale amounts by the demand so variables are O(1) for the solver.
  const double scale = demand;

  // Sparse incidence index, built in O(total path length): for each
  // capacity entry j, the signed paths whose net flow crosses it. CSR via
  // counting sort keyed by entry index.
  ws.inc_offset.assign(ncap + 1, 0);
  for (const Path& p : paths) {
    for (const EdgeId e : p) {
      if (cap.contains(e)) ++ws.inc_offset[cap.index_of(e) + 1];
      const EdgeId rev = g.reverse(e);
      if (cap.contains(rev)) ++ws.inc_offset[cap.index_of(rev) + 1];
    }
  }
  for (std::size_t j = 0; j < ncap; ++j) {
    ws.inc_offset[j + 1] += ws.inc_offset[j];
  }
  ws.inc_items.resize(ws.inc_offset[ncap]);
  ws.inc_fill.assign(ncap, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto signed_path = static_cast<std::int32_t>(i + 1);
    for (const EdgeId e : paths[i]) {
      if (cap.contains(e)) {
        const std::uint32_t j = cap.index_of(e);
        ws.inc_items[ws.inc_offset[j] + ws.inc_fill[j]++] = signed_path;
      }
      const EdgeId rev = g.reverse(e);
      if (cap.contains(rev)) {
        const std::uint32_t j = cap.index_of(rev);
        ws.inc_items[ws.inc_offset[j] + ws.inc_fill[j]++] = -signed_path;
      }
    }
  }

  ws.lp.reset(n);
  for (std::size_t i = 0; i < n; ++i) {
    ws.lp.objective[i] = fees.path_rate(paths[i]);
  }

  // Demand constraint: sum r_p = 1 (scaled).
  double* demand_row = ws.lp.add_constraint(Relation::kEq, 1.0);
  for (std::size_t i = 0; i < n; ++i) demand_row[i] = 1.0;

  // One capacity constraint per probed directed edge that some path
  // crosses (in either direction), in cap's insertion order.
  const auto& entries = cap.entries();
  for (std::size_t j = 0; j < ncap; ++j) {
    const std::uint32_t begin = ws.inc_offset[j];
    const std::uint32_t end = ws.inc_offset[j + 1];
    if (begin == end) continue;  // no path touches this edge
    double* row =
        ws.lp.add_constraint(Relation::kLessEq, entries[j].second / scale);
    for (std::uint32_t it = begin; it < end; ++it) {
      const std::int32_t item = ws.inc_items[it];
      if (item > 0) {
        row[item - 1] += 1.0;
      } else {
        row[-item - 1] -= 1.0;
      }
    }
  }

  solve_lp_core(ws.lp);
  if (ws.lp.status != LpStatus::kOptimal) return;

  out.feasible = true;
  out.amounts.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.amounts[i] = ws.lp.x[i] * scale;
  }
  out.total_fee = split_fee(fees, paths, out.amounts);
}

void sequential_split_core(const Graph& g, const std::vector<Path>& paths,
                           Amount demand, const ProbedCapacities& cap,
                           const FeeSchedule& fees, SplitWorkspace& ws,
                           SplitResult& out) {
  out.feasible = false;
  out.total_fee = 0;
  out.amounts.clear();
  if (paths.empty() || demand <= 0) return;

  auto& residual = ws.residual;
  residual.reset(g.num_edges());
  for (const auto& [e, c] : cap.entries()) residual.set(e, c);

  out.amounts.assign(paths.size(), 0);
  Amount remaining = demand;
  for (std::size_t i = 0; i < paths.size() && remaining > 1e-12; ++i) {
    // Joint residual bottleneck of this path.
    Amount bottleneck = remaining;
    for (EdgeId e : paths[i]) {
      if (e >= g.num_edges() || !residual.contains(e)) {
        // C does not cover the path set: cleanly infeasible. (This is the
        // LP-degenerate fallback inside route_elephant — throwing here
        // would abort a whole sweep over one malformed instance.)
        return;
      }
      bottleneck = std::min(bottleneck, residual.get(e));
    }
    if (bottleneck <= 0) continue;
    out.amounts[i] = bottleneck;
    remaining -= bottleneck;
    for (EdgeId e : paths[i]) {
      residual.slot(e) -= bottleneck;
      // Flow on e frees capacity on the reverse direction (offsetting).
      const EdgeId rev = g.reverse(e);
      if (residual.contains(rev)) residual.slot(rev) += bottleneck;
    }
  }
  if (remaining > 1e-9 * std::max<Amount>(1, demand)) {
    return;  // infeasible: could not place the full demand
  }
  out.feasible = true;
  out.total_fee = split_fee(fees, paths, out.amounts);
}

SplitResult optimize_fee_split(const Graph& g, const std::vector<Path>& paths,
                               Amount demand, const ProbedCapacities& cap,
                               const FeeSchedule& fees) {
  SplitResult result;
  optimize_fee_split_core(g, paths, demand, cap, fees,
                          internal_split_workspace(), result);
  return result;
}

SplitResult sequential_split(const Graph& g, const std::vector<Path>& paths,
                             Amount demand, const ProbedCapacities& cap,
                             const FeeSchedule& fees) {
  SplitResult result;
  sequential_split_core(g, paths, demand, cap, fees,
                        internal_split_workspace(), result);
  return result;
}

SplitResult optimize_fee_split(const Graph& g, const std::vector<Path>& paths,
                               Amount demand, const CapacityMap& cap,
                               const FeeSchedule& fees) {
  SplitWorkspace& ws = internal_split_workspace();
  stage_capacity_map(g, cap, ws.cap_buf);
  SplitResult result;
  optimize_fee_split_core(g, paths, demand, ws.cap_buf, fees, ws, result);
  return result;
}

SplitResult sequential_split(const Graph& g, const std::vector<Path>& paths,
                             Amount demand, const CapacityMap& cap,
                             const FeeSchedule& fees) {
  SplitWorkspace& ws = internal_split_workspace();
  stage_capacity_map(g, cap, ws.cap_buf);
  SplitResult result;
  sequential_split_core(g, paths, demand, ws.cap_buf, fees, ws, result);
  return result;
}

Amount split_fee(const FeeSchedule& fees, const std::vector<Path>& paths,
                 const std::vector<Amount>& amounts) {
  assert(paths.size() == amounts.size());
  Amount total = 0;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (amounts[i] <= 0) continue;
    total += fees.path_fee(paths[i], amounts[i]);
  }
  return total;
}

}  // namespace flash

// Fee-minimizing payment split across probed paths — program (1) of §3.2.
//
//   min  sum_p sum_{(u,v) in p} fee_{u,v}(r_p)
//   s.t. sum_p r_p = d
//        sum_p r_p a^p(u,v) - sum_p r_p a^p(v,u) <= C(u,v)  for all (u,v)
//        r_p >= 0
//
// where C is the capacity matrix probed by Algorithm 1. Flows on opposite
// directions of the same channel offset each other, exactly as in the paper.
// With linear (proportional) fees the objective coefficient of r_p is the
// sum of fee rates along p, making this an LP solved by simplex.
#pragma once

#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "graph/types.h"
#include "ledger/fee_policy.h"

namespace flash {

/// Probed capacity per directed edge (the sparse capacity matrix C).
using CapacityMap = std::unordered_map<EdgeId, Amount>;

struct SplitResult {
  bool feasible = false;
  std::vector<Amount> amounts;  // per path, aligned with `paths`
  Amount total_fee = 0;         // fees over all used paths at these amounts
};

/// LP-optimal split of demand d over `paths` under capacities `cap`.
/// Every edge appearing in `paths` must be present in `cap`.
SplitResult optimize_fee_split(const Graph& g, const std::vector<Path>& paths,
                               Amount demand, const CapacityMap& cap,
                               const FeeSchedule& fees);

/// The "w/o optimization" baseline of Fig. 9: fill paths sequentially in
/// discovery order, each up to its joint residual capacity, until the
/// demand is met.
SplitResult sequential_split(const Graph& g, const std::vector<Path>& paths,
                             Amount demand, const CapacityMap& cap,
                             const FeeSchedule& fees);

/// Fee charged for a split (shared by both strategies and the tests).
Amount split_fee(const FeeSchedule& fees, const std::vector<Path>& paths,
                 const std::vector<Amount>& amounts);

}  // namespace flash

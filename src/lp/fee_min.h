// Fee-minimizing payment split across probed paths — program (1) of §3.2.
//
//   min  sum_p sum_{(u,v) in p} fee_{u,v}(r_p)
//   s.t. sum_p r_p = d
//        sum_p r_p a^p(u,v) - sum_p r_p a^p(v,u) <= C(u,v)  for all (u,v)
//        r_p >= 0
//
// where C is the capacity matrix probed by Algorithm 1. Flows on opposite
// directions of the same channel offset each other, exactly as in the paper.
// With linear (proportional) fees the objective coefficient of r_p is the
// sum of fee rates along p, making this an LP solved by simplex.
//
// Constraint ordering: the LP can have several optimal vertices and the
// simplex picks one as a function of constraint order, so the order C is
// iterated in is part of the result's determinism contract. ProbedCapacities
// iterates in *insertion order* (for Algorithm 1: the order edges were
// first probed), which is canonical and portable — the same on every
// standard library. The legacy CapacityMap (std::unordered_map) overloads
// remain for callers holding a map; they emit constraints in that map's
// hash-iteration order, which is libstdc++-specific.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "graph/scratch.h"
#include "graph/types.h"
#include "ledger/fee_policy.h"
#include "lp/simplex.h"

namespace flash {

/// Probed capacity per directed edge (the sparse capacity matrix C):
/// an insertion-ordered flat (EdgeId, Amount) vector plus an epoch-stamped
/// edge -> entry index, so reset() is O(1) and membership/lookup O(1).
/// Iteration walks entries in insertion order — the canonical constraint
/// order of program (1). Reusing one instance across probes is
/// allocation-free once the buffers have warmed up.
class ProbedCapacities {
 public:
  /// Forgets all entries and re-keys the index for edge ids < num_edges.
  void reset(std::size_t num_edges) {
    entries_.clear();
    num_edges_ = num_edges;
    index_.reset(num_edges);
  }

  /// Records the probed capacity of `e`. Precondition: e < num_edges of
  /// the last reset() and !contains(e) — Algorithm 1 records each directed
  /// edge exactly once, when it is first probed.
  void insert(EdgeId e, Amount capacity) {
    index_.set(e, static_cast<std::uint32_t>(entries_.size()));
    entries_.emplace_back(e, capacity);
  }

  bool contains(EdgeId e) const {
    return e < num_edges_ && index_.contains(e);
  }

  /// Index of e's entry in insertion order. Precondition: contains(e).
  std::uint32_t index_of(EdgeId e) const { return index_.get(e); }

  /// Probed capacity of e. Precondition: contains(e).
  Amount at(EdgeId e) const { return entries_[index_.get(e)].second; }

  const std::vector<std::pair<EdgeId, Amount>>& entries() const noexcept {
    return entries_;
  }
  auto begin() const noexcept { return entries_.begin(); }
  auto end() const noexcept { return entries_.end(); }
  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }

 private:
  std::vector<std::pair<EdgeId, Amount>> entries_;
  StampedArray<std::uint32_t> index_;
  std::size_t num_edges_ = 0;
};

/// Legacy capacity-matrix type; superseded by ProbedCapacities (whose
/// iteration order is portable). Kept for callers that assemble C by hand.
using CapacityMap = std::unordered_map<EdgeId, Amount>;

struct SplitResult {
  bool feasible = false;
  std::vector<Amount> amounts;  // per path, aligned with `paths`
  Amount total_fee = 0;         // fees over all used paths at these amounts
};

/// Reusable workspace for the split strategies: the LP workspace, the
/// sparse edge -> (path, sign) incidence index optimize_fee_split builds
/// per call, residuals for the sequential fill, and a staging buffer for
/// the legacy map-based overloads. Same single-owner/thread-affinity
/// contract as GraphScratch; FlashRouter owns one per router.
struct SplitWorkspace {
  LpWorkspace lp;

  // Incidence index (optimize_fee_split_core): for capacity entry j, the
  // paths crossing it. CSR layout over entry indices; items are signed
  // path indices (i + 1 forward, -(i + 1) reverse), built in O(total path
  // length) per call.
  std::vector<std::uint32_t> inc_offset;   // size cap.size() + 1
  std::vector<std::int32_t> inc_items;     // signed path indices
  std::vector<std::uint32_t> inc_fill;     // per-entry fill cursor

  // Sequential-fill residual capacities (epoch-reset per call).
  StampedArray<Amount> residual;

  // Legacy CapacityMap overloads stage the map through this buffer.
  ProbedCapacities cap_buf;

  // route_elephant plumbing: the reused split result and the first-touch
  // channel list for sparse flow netting (see elephant.cc).
  SplitResult split_buf;
  std::vector<EdgeId> net_channels;
};

/// LP-optimal split of demand d over `paths` under capacities `cap`,
/// emitting capacity constraints in cap's insertion order. Runs entirely
/// in `ws` (zero steady-state allocations); the result lands in `out`
/// (buffers reused). Edges appearing in `paths` but missing from `cap`
/// are unconstrained, exactly as in the legacy map-based formulation.
/// Precondition: paths are channel-simple (no path uses a directed edge
/// or its reverse more than once) — true for every path Algorithm 1 or
/// Yen produces.
void optimize_fee_split_core(const Graph& g, const std::vector<Path>& paths,
                             Amount demand, const ProbedCapacities& cap,
                             const FeeSchedule& fees, SplitWorkspace& ws,
                             SplitResult& out);

/// The "w/o optimization" baseline of Fig. 9: fill paths sequentially in
/// discovery order, each up to its joint residual capacity, until the
/// demand is met. Runs in `ws` (zero steady-state allocations). A path
/// edge missing from `cap` makes the split infeasible (returned cleanly,
/// never thrown): the probed matrix does not cover the path set.
void sequential_split_core(const Graph& g, const std::vector<Path>& paths,
                           Amount demand, const ProbedCapacities& cap,
                           const FeeSchedule& fees, SplitWorkspace& ws,
                           SplitResult& out);

/// Convenience overloads over a thread_local workspace.
SplitResult optimize_fee_split(const Graph& g, const std::vector<Path>& paths,
                               Amount demand, const ProbedCapacities& cap,
                               const FeeSchedule& fees);
SplitResult sequential_split(const Graph& g, const std::vector<Path>& paths,
                             Amount demand, const ProbedCapacities& cap,
                             const FeeSchedule& fees);

/// Legacy overloads: constraint order is the map's (stdlib-specific)
/// iteration order, matching the historical behavior bit-for-bit.
SplitResult optimize_fee_split(const Graph& g, const std::vector<Path>& paths,
                               Amount demand, const CapacityMap& cap,
                               const FeeSchedule& fees);
SplitResult sequential_split(const Graph& g, const std::vector<Path>& paths,
                             Amount demand, const CapacityMap& cap,
                             const FeeSchedule& fees);

/// Fee charged for a split (shared by both strategies and the tests).
Amount split_fee(const FeeSchedule& fees, const std::vector<Path>& paths,
                 const std::vector<Amount>& amounts);

}  // namespace flash

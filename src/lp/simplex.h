// Dense two-phase simplex linear-program solver.
//
// Program (1) of the paper — split an elephant payment over the probed path
// set to minimize total fees — is a linear program when fees are linear
// (§3.2: "the fee charging function is typically linear ... which means (1)
// is a simple linear program"). Problems here are tiny (k <= ~30 variables,
// a few dozen constraints), so a dense tableau with Bland's anti-cycling
// rule is simple, exact enough, and fast.
//
// Two entry points:
//  - solve_lp_core(LpWorkspace&): the hot path. The caller emits the
//    problem directly into a reusable workspace (flat row-major constraint
//    buffer, no per-constraint vectors) and the solver runs in that same
//    workspace: one flat tableau buffer, mask-based artificial-column
//    tracking, zero steady-state heap allocations once the buffers have
//    warmed up to the largest problem seen.
//  - solve_lp(const LpProblem&): the legacy value-type API, kept as a thin
//    wrapper that copies the problem into a thread_local workspace (the
//    same pattern the graph cores use, see graph/scratch.h).
// Both run the identical pivot sequence: for the same problem (same
// constraint order) they produce bit-identical solutions.
#pragma once

#include <cstddef>
#include <vector>

namespace flash {

enum class Relation { kLessEq, kEq, kGreaterEq };

struct LpConstraint {
  std::vector<double> coeffs;  // one per variable; missing treated as 0
  Relation rel = Relation::kLessEq;
  double rhs = 0;
};

/// minimize objective . x  subject to constraints, x >= 0.
struct LpProblem {
  std::vector<double> objective;
  std::vector<LpConstraint> constraints;

  std::size_t num_vars() const noexcept { return objective.size(); }
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded };

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  std::vector<double> x;        // valid iff status == kOptimal
  double objective_value = 0;   // valid iff status == kOptimal
};

/// Reusable workspace: problem input, solver scratch and solution output in
/// one allocation-retaining object.
///
/// Usage:
///   ws.reset(num_vars);
///   ws.objective[j] = ...;                 // length num_vars, zero-filled
///   double* row = ws.add_constraint(Relation::kEq, rhs);
///   row[j] = ...;                          // length num_vars, zero-filled
///   solve_lp_core(ws);
///   if (ws.status == LpStatus::kOptimal) use ws.x / ws.objective_value;
///
/// Constraint order is the emission order, and it matters: a degenerate LP
/// can have several optimal vertices and Bland's rule picks one as a
/// function of row/column order. Callers that need reproducible results
/// must emit constraints in a canonical order (see lp/fee_min.h).
///
/// Not thread-safe; same single-owner contract as GraphScratch. All
/// vectors keep their capacity across reset(), so a workspace reused at a
/// steady problem size performs no heap allocations.
class LpWorkspace {
 public:
  // --- Problem (caller-filled) ----------------------------------------
  std::vector<double> objective;     // length num_vars()

  /// Clears the problem to `num_vars` variables and no constraints.
  void reset(std::size_t num_vars) {
    num_vars_ = num_vars;
    objective.assign(num_vars, 0.0);
    num_cons_ = 0;
    coeffs_.clear();
    rel_.clear();
    rhs_.clear();
  }

  /// Appends a zero-filled constraint row; returns the row's coefficient
  /// buffer (length num_vars()). The pointer is invalidated by the next
  /// add_constraint call.
  double* add_constraint(Relation rel, double rhs) {
    coeffs_.resize(coeffs_.size() + num_vars_, 0.0);
    rel_.push_back(static_cast<char>(rel));
    rhs_.push_back(rhs);
    ++num_cons_;
    return coeffs_.data() + coeffs_.size() - num_vars_;
  }

  std::size_t num_vars() const noexcept { return num_vars_; }
  std::size_t num_constraints() const noexcept { return num_cons_; }
  const double* constraint_coeffs(std::size_t i) const {
    return coeffs_.data() + i * num_vars_;
  }
  Relation constraint_rel(std::size_t i) const {
    return static_cast<Relation>(rel_[i]);
  }
  double constraint_rhs(std::size_t i) const { return rhs_[i]; }

  // --- Solution (solver-filled) ---------------------------------------
  LpStatus status = LpStatus::kInfeasible;
  std::vector<double> x;             // length num_vars(), valid iff optimal
  double objective_value = 0;        // valid iff optimal

 private:
  friend void solve_lp_core(LpWorkspace& ws);

  std::size_t num_vars_ = 0;
  std::size_t num_cons_ = 0;
  std::vector<double> coeffs_;       // row-major, num_cons x num_vars
  std::vector<char> rel_;            // Relation per row
  std::vector<double> rhs_;          // per row

  // Solver scratch (see simplex.cc). Flat row-major tableau of
  // num_cons x (total_cols + 1) with the rhs in the last column.
  std::vector<double> tableau_;
  std::vector<std::size_t> basis_;   // basic variable per row
  std::vector<double> z_;            // reduced-cost row
  std::vector<double> z_dummy_;      // throwaway z for drive-out pivots
  std::vector<char> allowed_;        // per column: may enter the basis
  std::vector<char> artificial_;    // per column: is an artificial
  std::vector<double> row_sign_;     // per row: rhs sign normalization
  std::vector<char> needs_artificial_;  // per row
};

/// Solves the problem in `ws`, writing ws.status / ws.x /
/// ws.objective_value. Deterministic; terminates on all inputs (Bland's
/// rule); zero steady-state heap allocations.
void solve_lp_core(LpWorkspace& ws);

/// Legacy API: solves the LP via a thread_local workspace. Deterministic;
/// terminates on all inputs (Bland's rule).
LpSolution solve_lp(const LpProblem& problem);

}  // namespace flash

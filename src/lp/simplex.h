// Dense two-phase simplex linear-program solver.
//
// Program (1) of the paper — split an elephant payment over the probed path
// set to minimize total fees — is a linear program when fees are linear
// (§3.2: "the fee charging function is typically linear ... which means (1)
// is a simple linear program"). Problems here are tiny (k <= ~30 variables,
// a few dozen constraints), so a dense tableau with Bland's anti-cycling
// rule is simple, exact enough, and fast.
#pragma once

#include <cstddef>
#include <vector>

namespace flash {

enum class Relation { kLessEq, kEq, kGreaterEq };

struct LpConstraint {
  std::vector<double> coeffs;  // one per variable; missing treated as 0
  Relation rel = Relation::kLessEq;
  double rhs = 0;
};

/// minimize objective . x  subject to constraints, x >= 0.
struct LpProblem {
  std::vector<double> objective;
  std::vector<LpConstraint> constraints;

  std::size_t num_vars() const noexcept { return objective.size(); }
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded };

struct LpSolution {
  LpStatus status = LpStatus::kInfeasible;
  std::vector<double> x;        // valid iff status == kOptimal
  double objective_value = 0;   // valid iff status == kOptimal
};

/// Solves the LP. Deterministic; terminates on all inputs (Bland's rule).
LpSolution solve_lp(const LpProblem& problem);

}  // namespace flash

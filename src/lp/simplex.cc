#include "lp/simplex.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace flash {

namespace {

constexpr double kEps = 1e-9;

/// Dense simplex tableau with an explicit basis.
class Tableau {
 public:
  Tableau(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), a_(rows, std::vector<double>(cols + 1, 0)),
        basis_(rows, 0) {}

  double& at(std::size_t r, std::size_t c) { return a_[r][c]; }
  double& rhs(std::size_t r) { return a_[r][cols_]; }
  std::size_t basis(std::size_t r) const { return basis_[r]; }
  void set_basis(std::size_t r, std::size_t var) { basis_[r] = var; }
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Gauss pivot on (pr, pc): pc's variable enters the basis at row pr.
  void pivot(std::size_t pr, std::size_t pc, std::vector<double>& z,
             double& z_value) {
    const double p = a_[pr][pc];
    assert(std::abs(p) > kEps);
    for (double& v : a_[pr]) v /= p;
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == pr) continue;
      const double factor = a_[r][pc];
      if (std::abs(factor) < kEps) continue;
      for (std::size_t c = 0; c <= cols_; ++c) {
        a_[r][c] -= factor * a_[pr][c];
      }
      a_[r][pc] = 0;  // exact zero against drift
    }
    const double zf = z[pc];
    if (std::abs(zf) > 0) {
      for (std::size_t c = 0; c < cols_; ++c) z[c] -= zf * a_[pr][c];
      z_value -= zf * a_[pr][cols_];
      z[pc] = 0;
    }
    basis_[pr] = pc;
  }

  /// Runs simplex iterations on reduced-cost row z until optimal or
  /// unbounded. Bland's rule: entering = smallest index with z < -eps;
  /// leaving = min ratio, ties by smallest basic variable index.
  /// Returns false on unboundedness.
  bool iterate(std::vector<double>& z, double& z_value,
               const std::vector<char>& allowed) {
    while (true) {
      std::size_t entering = cols_;
      for (std::size_t c = 0; c < cols_; ++c) {
        if (allowed[c] && z[c] < -kEps) {
          entering = c;
          break;
        }
      }
      if (entering == cols_) return true;  // optimal

      std::size_t leaving = rows_;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t r = 0; r < rows_; ++r) {
        if (a_[r][entering] > kEps) {
          const double ratio = a_[r][cols_] / a_[r][entering];
          if (ratio < best_ratio - kEps ||
              (ratio < best_ratio + kEps &&
               (leaving == rows_ || basis_[r] < basis_[leaving]))) {
            best_ratio = ratio;
            leaving = r;
          }
        }
      }
      if (leaving == rows_) return false;  // unbounded
      pivot(leaving, entering, z, z_value);
    }
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::vector<double>> a_;
  std::vector<std::size_t> basis_;
};

}  // namespace

LpSolution solve_lp(const LpProblem& problem) {
  const std::size_t n = problem.num_vars();
  const std::size_t m = problem.constraints.size();
  LpSolution solution;

  // Column layout: [0, n) structural, then one slack/surplus per inequality,
  // then one artificial per constraint that needs one.
  std::size_t num_slack = 0;
  for (const auto& con : problem.constraints) {
    if (con.rel != Relation::kEq) ++num_slack;
  }

  // First pass to count artificials: a >= or == row always gets one; a <=
  // row gets one only if its (sign-normalized) rhs is negative, i.e. the
  // slack cannot serve as the initial basic variable.
  std::vector<double> sign(m, 1.0);
  std::vector<char> needs_artificial(m, 0);
  {
    for (std::size_t i = 0; i < m; ++i) {
      const auto& con = problem.constraints[i];
      Relation rel = con.rel;
      double rhs = con.rhs;
      if (rhs < 0) {
        sign[i] = -1.0;
        rhs = -rhs;
        if (rel == Relation::kLessEq) {
          rel = Relation::kGreaterEq;
        } else if (rel == Relation::kGreaterEq) {
          rel = Relation::kLessEq;
        }
      }
      needs_artificial[i] = (rel != Relation::kLessEq) ? 1 : 0;
    }
  }
  std::size_t num_artificial = 0;
  for (std::size_t i = 0; i < m; ++i) num_artificial += needs_artificial[i];

  const std::size_t total = n + num_slack + num_artificial;
  Tableau t(m, total);

  std::size_t slack_col = n;
  std::size_t art_col = n + num_slack;
  std::vector<std::size_t> artificial_cols;
  for (std::size_t i = 0; i < m; ++i) {
    const auto& con = problem.constraints[i];
    assert(con.coeffs.size() <= n);
    for (std::size_t j = 0; j < con.coeffs.size(); ++j) {
      t.at(i, j) = sign[i] * con.coeffs[j];
    }
    t.rhs(i) = sign[i] * con.rhs;

    Relation rel = con.rel;
    if (sign[i] < 0) {
      if (rel == Relation::kLessEq) {
        rel = Relation::kGreaterEq;
      } else if (rel == Relation::kGreaterEq) {
        rel = Relation::kLessEq;
      }
    }
    if (rel == Relation::kLessEq) {
      t.at(i, slack_col) = 1.0;
      t.set_basis(i, slack_col);
      ++slack_col;
    } else if (rel == Relation::kGreaterEq) {
      t.at(i, slack_col) = -1.0;  // surplus
      ++slack_col;
      t.at(i, art_col) = 1.0;
      t.set_basis(i, art_col);
      artificial_cols.push_back(art_col);
      ++art_col;
    } else {  // equality
      t.at(i, art_col) = 1.0;
      t.set_basis(i, art_col);
      artificial_cols.push_back(art_col);
      ++art_col;
    }
  }

  std::vector<char> allowed(total, 1);

  // ---- Phase 1: minimize the sum of artificials. ----
  if (num_artificial > 0) {
    std::vector<double> z1(total, 0.0);
    double z1_value = 0.0;
    for (std::size_t c : artificial_cols) z1[c] = 1.0;
    // Reduce: subtract rows whose basis is artificial.
    for (std::size_t r = 0; r < m; ++r) {
      const std::size_t b = t.basis(r);
      const bool basic_artificial =
          std::find(artificial_cols.begin(), artificial_cols.end(), b) !=
          artificial_cols.end();
      if (basic_artificial) {
        for (std::size_t c = 0; c < total; ++c) z1[c] -= t.at(r, c);
        z1_value -= t.rhs(r);
      }
    }
    if (!t.iterate(z1, z1_value, allowed)) {
      // Phase-1 objective is bounded below by 0; unbounded means a bug.
      solution.status = LpStatus::kInfeasible;
      return solution;
    }
    if (-z1_value > 1e-7) {  // minimized sum of artificials is -z1_value
      solution.status = LpStatus::kInfeasible;
      return solution;
    }
    // Drive any degenerate basic artificial out of the basis.
    for (std::size_t r = 0; r < m; ++r) {
      const std::size_t b = t.basis(r);
      if (std::find(artificial_cols.begin(), artificial_cols.end(), b) ==
          artificial_cols.end()) {
        continue;
      }
      std::size_t pc = total;
      for (std::size_t c = 0; c < n + num_slack; ++c) {
        if (std::abs(t.at(r, c)) > kEps) {
          pc = c;
          break;
        }
      }
      if (pc != total) {
        double dummy = 0.0;
        std::vector<double> zdummy(total, 0.0);
        t.pivot(r, pc, zdummy, dummy);
      }
      // If the whole row is zero the constraint is redundant; the
      // artificial stays basic at value 0, which is harmless as long as it
      // cannot re-enter (disallowed below).
    }
    for (std::size_t c : artificial_cols) allowed[c] = 0;
  }

  // ---- Phase 2: minimize the real objective. ----
  std::vector<double> z2(total, 0.0);
  double z2_value = 0.0;
  for (std::size_t j = 0; j < n; ++j) z2[j] = problem.objective[j];
  for (std::size_t r = 0; r < m; ++r) {
    const std::size_t b = t.basis(r);
    if (b < total && std::abs(z2[b]) > 0) {
      const double factor = z2[b];
      for (std::size_t c = 0; c < total; ++c) z2[c] -= factor * t.at(r, c);
      z2_value -= factor * t.rhs(r);
      z2[b] = 0;
    }
  }
  if (!t.iterate(z2, z2_value, allowed)) {
    solution.status = LpStatus::kUnbounded;
    return solution;
  }

  solution.status = LpStatus::kOptimal;
  solution.x.assign(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    const std::size_t b = t.basis(r);
    if (b < n) solution.x[b] = std::max(0.0, t.rhs(r));
  }
  solution.objective_value = -z2_value;
  // Recompute the objective from x to shed accumulated pivot drift.
  double direct = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    direct += problem.objective[j] * solution.x[j];
  }
  solution.objective_value = direct;
  return solution;
}

}  // namespace flash

#include "lp/simplex.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace flash {

namespace {

constexpr double kEps = 1e-9;

/// Dense simplex over the workspace's flat row-major tableau, with an
/// explicit basis. Row stride is cols + 1: the rhs lives in the last
/// column of each row. A thin view — all storage belongs to the workspace.
class Tableau {
 public:
  Tableau(double* a, std::size_t* basis, std::size_t rows, std::size_t cols)
      : a_(a), basis_(basis), rows_(rows), cols_(cols), stride_(cols + 1) {}

  double& at(std::size_t r, std::size_t c) { return a_[r * stride_ + c]; }
  double& rhs(std::size_t r) { return a_[r * stride_ + cols_]; }
  std::size_t basis(std::size_t r) const { return basis_[r]; }
  void set_basis(std::size_t r, std::size_t var) { basis_[r] = var; }

  /// Gauss pivot on (pr, pc): pc's variable enters the basis at row pr.
  void pivot(std::size_t pr, std::size_t pc, double* z, double& z_value) {
    double* prow = a_ + pr * stride_;
    const double p = prow[pc];
    assert(std::abs(p) > kEps);
    for (std::size_t c = 0; c < stride_; ++c) prow[c] /= p;
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == pr) continue;
      double* row = a_ + r * stride_;
      const double factor = row[pc];
      if (std::abs(factor) < kEps) continue;
      for (std::size_t c = 0; c < stride_; ++c) {
        row[c] -= factor * prow[c];
      }
      row[pc] = 0;  // exact zero against drift
    }
    const double zf = z[pc];
    if (std::abs(zf) > 0) {
      for (std::size_t c = 0; c < cols_; ++c) z[c] -= zf * prow[c];
      z_value -= zf * prow[cols_];
      z[pc] = 0;
    }
    basis_[pr] = pc;
  }

  /// Runs simplex iterations on reduced-cost row z until optimal or
  /// unbounded. Bland's rule: entering = smallest index with z < -eps;
  /// leaving = min ratio, ties by smallest basic variable index.
  /// Returns false on unboundedness.
  bool iterate(double* z, double& z_value, const char* allowed) {
    while (true) {
      std::size_t entering = cols_;
      for (std::size_t c = 0; c < cols_; ++c) {
        if (allowed[c] && z[c] < -kEps) {
          entering = c;
          break;
        }
      }
      if (entering == cols_) return true;  // optimal

      std::size_t leaving = rows_;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t r = 0; r < rows_; ++r) {
        const double* row = a_ + r * stride_;
        if (row[entering] > kEps) {
          const double ratio = row[cols_] / row[entering];
          if (ratio < best_ratio - kEps ||
              (ratio < best_ratio + kEps &&
               (leaving == rows_ || basis_[r] < basis_[leaving]))) {
            best_ratio = ratio;
            leaving = r;
          }
        }
      }
      if (leaving == rows_) return false;  // unbounded
      pivot(leaving, entering, z, z_value);
    }
  }

 private:
  double* a_;
  std::size_t* basis_;
  std::size_t rows_;
  std::size_t cols_;
  std::size_t stride_;
};

}  // namespace

void solve_lp_core(LpWorkspace& ws) {
  const std::size_t n = ws.num_vars_;
  const std::size_t m = ws.num_cons_;
  ws.status = LpStatus::kInfeasible;
  ws.objective_value = 0;

  // Column layout: [0, n) structural, then one slack/surplus per inequality,
  // then one artificial per constraint that needs one.
  std::size_t num_slack = 0;
  for (std::size_t i = 0; i < m; ++i) {
    if (ws.constraint_rel(i) != Relation::kEq) ++num_slack;
  }

  // First pass to count artificials: a >= or == row always gets one; a <=
  // row gets one only if its (sign-normalized) rhs is negative, i.e. the
  // slack cannot serve as the initial basic variable.
  ws.row_sign_.assign(m, 1.0);
  ws.needs_artificial_.assign(m, 0);
  for (std::size_t i = 0; i < m; ++i) {
    Relation rel = ws.constraint_rel(i);
    double rhs = ws.rhs_[i];
    if (rhs < 0) {
      ws.row_sign_[i] = -1.0;
      rhs = -rhs;
      if (rel == Relation::kLessEq) {
        rel = Relation::kGreaterEq;
      } else if (rel == Relation::kGreaterEq) {
        rel = Relation::kLessEq;
      }
    }
    ws.needs_artificial_[i] = (rel != Relation::kLessEq) ? 1 : 0;
  }
  std::size_t num_artificial = 0;
  for (std::size_t i = 0; i < m; ++i) num_artificial += ws.needs_artificial_[i];

  const std::size_t total = n + num_slack + num_artificial;
  ws.tableau_.assign(m * (total + 1), 0.0);
  ws.basis_.assign(m, 0);
  ws.artificial_.assign(total, 0);
  Tableau t(ws.tableau_.data(), ws.basis_.data(), m, total);

  std::size_t slack_col = n;
  std::size_t art_col = n + num_slack;
  for (std::size_t i = 0; i < m; ++i) {
    const double* coeffs = ws.constraint_coeffs(i);
    const double sign = ws.row_sign_[i];
    for (std::size_t j = 0; j < n; ++j) {
      t.at(i, j) = sign * coeffs[j];
    }
    t.rhs(i) = sign * ws.rhs_[i];

    Relation rel = ws.constraint_rel(i);
    if (sign < 0) {
      if (rel == Relation::kLessEq) {
        rel = Relation::kGreaterEq;
      } else if (rel == Relation::kGreaterEq) {
        rel = Relation::kLessEq;
      }
    }
    if (rel == Relation::kLessEq) {
      t.at(i, slack_col) = 1.0;
      t.set_basis(i, slack_col);
      ++slack_col;
    } else if (rel == Relation::kGreaterEq) {
      t.at(i, slack_col) = -1.0;  // surplus
      ++slack_col;
      t.at(i, art_col) = 1.0;
      t.set_basis(i, art_col);
      ws.artificial_[art_col] = 1;
      ++art_col;
    } else {  // equality
      t.at(i, art_col) = 1.0;
      t.set_basis(i, art_col);
      ws.artificial_[art_col] = 1;
      ++art_col;
    }
  }

  ws.allowed_.assign(total, 1);

  // ---- Phase 1: minimize the sum of artificials. ----
  if (num_artificial > 0) {
    ws.z_.assign(total, 0.0);
    double z1_value = 0.0;
    for (std::size_t c = n + num_slack; c < total; ++c) ws.z_[c] = 1.0;
    // Reduce: subtract rows whose basis is artificial.
    for (std::size_t r = 0; r < m; ++r) {
      if (ws.artificial_[t.basis(r)]) {
        for (std::size_t c = 0; c < total; ++c) ws.z_[c] -= t.at(r, c);
        z1_value -= t.rhs(r);
      }
    }
    if (!t.iterate(ws.z_.data(), z1_value, ws.allowed_.data())) {
      // Phase-1 objective is bounded below by 0; unbounded means a bug.
      ws.status = LpStatus::kInfeasible;
      return;
    }
    if (-z1_value > 1e-7) {  // minimized sum of artificials is -z1_value
      ws.status = LpStatus::kInfeasible;
      return;
    }
    // Drive any degenerate basic artificial out of the basis. The dummy
    // reduced-cost row stays all-zero through every such pivot (zf == 0),
    // so it is cleared once, not per pivot.
    ws.z_dummy_.assign(total, 0.0);
    double dummy = 0.0;
    for (std::size_t r = 0; r < m; ++r) {
      if (!ws.artificial_[t.basis(r)]) continue;
      std::size_t pc = total;
      for (std::size_t c = 0; c < n + num_slack; ++c) {
        if (std::abs(t.at(r, c)) > kEps) {
          pc = c;
          break;
        }
      }
      if (pc != total) {
        t.pivot(r, pc, ws.z_dummy_.data(), dummy);
      }
      // If the whole row is zero the constraint is redundant; the
      // artificial stays basic at value 0, which is harmless as long as it
      // cannot re-enter (disallowed below).
    }
    for (std::size_t c = n + num_slack; c < total; ++c) ws.allowed_[c] = 0;
  }

  // ---- Phase 2: minimize the real objective. ----
  ws.z_.assign(total, 0.0);
  double z2_value = 0.0;
  for (std::size_t j = 0; j < n; ++j) ws.z_[j] = ws.objective[j];
  for (std::size_t r = 0; r < m; ++r) {
    const std::size_t b = t.basis(r);
    if (b < total && std::abs(ws.z_[b]) > 0) {
      const double factor = ws.z_[b];
      for (std::size_t c = 0; c < total; ++c) ws.z_[c] -= factor * t.at(r, c);
      z2_value -= factor * t.rhs(r);
      ws.z_[b] = 0;
    }
  }
  if (!t.iterate(ws.z_.data(), z2_value, ws.allowed_.data())) {
    ws.status = LpStatus::kUnbounded;
    return;
  }

  ws.status = LpStatus::kOptimal;
  ws.x.assign(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    const std::size_t b = t.basis(r);
    if (b < n) ws.x[b] = std::max(0.0, t.rhs(r));
  }
  // Recompute the objective from x to shed accumulated pivot drift.
  double direct = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    direct += ws.objective[j] * ws.x[j];
  }
  ws.objective_value = direct;
}

LpSolution solve_lp(const LpProblem& problem) {
  // LP solving takes no user callbacks, so unlike the graph wrappers this
  // thread_local needs no re-entrancy lease.
  thread_local LpWorkspace ws;
  const std::size_t n = problem.num_vars();
  ws.reset(n);
  for (std::size_t j = 0; j < n; ++j) ws.objective[j] = problem.objective[j];
  for (const auto& con : problem.constraints) {
    assert(con.coeffs.size() <= n);
    double* row = ws.add_constraint(con.rel, con.rhs);
    const std::size_t k = std::min(con.coeffs.size(), n);
    for (std::size_t j = 0; j < k; ++j) row[j] = con.coeffs[j];
  }
  solve_lp_core(ws);

  LpSolution solution;
  solution.status = ws.status;
  if (ws.status == LpStatus::kOptimal) {
    solution.x = ws.x;
    solution.objective_value = ws.objective_value;
  }
  return solution;
}

}  // namespace flash

#!/usr/bin/env python3
"""Runs a command and records its peak RSS.

Usage: with_rss.py RSS_LOG NAME -- CMD [ARGS...]

Appends "NAME <peak_rss_kib>" to RSS_LOG after the command exits, and
propagates the command's exit code. Uses getrusage(RUSAGE_CHILDREN), which
on Linux reports the high-water resident set of the (single) child in KiB
-- this wrapper exists because the bench container ships no /usr/bin/time.
"""
import resource
import subprocess
import sys


def main() -> int:
    if len(sys.argv) < 5 or sys.argv[3] != "--":
        sys.stderr.write(__doc__)
        return 2
    log_path, name, cmd = sys.argv[1], sys.argv[2], sys.argv[4:]
    rc = subprocess.call(cmd)
    rss_kib = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    with open(log_path, "a") as log:
        log.write(f"{name} {rss_kib}\n")
    return rc


if __name__ == "__main__":
    sys.exit(main())

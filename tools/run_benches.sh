#!/usr/bin/env bash
# Runs the benchmark suite and records results.
#
#   tools/run_benches.sh [build-dir] [out-dir]
#
# - Google Benchmark micro benches emit machine-readable JSON
#   (BENCH_micro.json), seeding the perf trajectory tracked across PRs.
# - fig*/ablation_* paper-figure benches run in FLASH_BENCH_FAST mode and
#   their paper-vs-measured tables are captured to one log per figure.
#   Sweep-engine benches additionally write a structured JSON report
#   (per-cell aggregates + wall clock + thread count) via FLASH_BENCH_JSON,
#   and every figure bench's wall-clock seconds and the thread count are
#   folded into BENCH_micro.json under "sweep_benches" so the parallel
#   speedup is visible in the perf trajectory.
# - FLASH_BENCH_THREADS caps the sweep-engine workers (default: all
#   hardware threads).
# - bench_concurrent (sequential vs replay vs free-order payment engine)
#   and bench_scale run in their own sections; their per-cell JSON reports
#   land in BENCH_micro.json under "concurrent" and "scale".
# - fig15_htlc_sweep (time-extended HTLC lifecycle) rides the fig* loop;
#   its JSON report additionally carries the zero-latency digest checks
#   (HtlcConfig{} vs instant settlement) CI gates on, and the bench itself
#   exits non-zero if any scheme's digests diverge.
#
# Builds the bench_all target first if the build directory exists but the
# binaries do not.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench-results}"

if [[ ! -d "${BUILD_DIR}" ]]; then
  echo "error: build dir '${BUILD_DIR}' not found." >&2
  echo "run: cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j" >&2
  exit 1
fi

cmake --build "${BUILD_DIR}" --target bench_all -j "$(nproc)"

mkdir -p "${OUT_DIR}"

# Peak-RSS log: every bench below runs under tools/with_rss.py, which
# appends "name kib" lines here; the merge step attaches them to
# BENCH_micro.json so memory rides the perf trajectory alongside time.
REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
RSS_LOG="${OUT_DIR}/peak_rss.txt"
: >"${RSS_LOG}"
with_rss() { # with_rss NAME CMD...
  local name="$1"
  shift
  python3 "${REPO_ROOT}/tools/with_rss.py" "${RSS_LOG}" "${name}" -- "$@"
}

echo "== micro benches (Google Benchmark) =="
with_rss micro_algorithms "${BUILD_DIR}/bench/micro_algorithms" \
  --benchmark_out="${OUT_DIR}/BENCH_micro_algorithms.json" \
  --benchmark_out_format=json
with_rss micro_routing "${BUILD_DIR}/bench/micro_routing" \
  --benchmark_out="${OUT_DIR}/BENCH_micro_routing.json" \
  --benchmark_out_format=json

echo
echo "== graph core benches (allocation-free hot paths) =="
with_rss bench_graph_core "${BUILD_DIR}/bench/bench_graph_core" \
  --benchmark_out="${OUT_DIR}/BENCH_graph_core.json" \
  --benchmark_out_format=json

echo
echo "== LP core benches (fee-split pipeline) =="
with_rss bench_lp "${BUILD_DIR}/bench/bench_lp" \
  --benchmark_out="${OUT_DIR}/BENCH_lp.json" \
  --benchmark_out_format=json

echo
echo "== figure benches (FLASH_BENCH_FAST smoke sweeps) =="
export FLASH_BENCH_FAST=1
THREADS="${FLASH_BENCH_THREADS:-$(nproc)}"
export FLASH_BENCH_THREADS="${THREADS}"
TIMINGS="${OUT_DIR}/sweep_timings.txt"
: >"${TIMINGS}"
FIG_FAILURES=0
for bin in "${BUILD_DIR}"/bench/fig* "${BUILD_DIR}"/bench/ablation_*; do
  name="$(basename "${bin}")"
  [[ -x "${bin}" ]] || continue
  echo "-- ${name} (${THREADS} threads)"
  # Drop any stale sweep report so a bench that fails to write a fresh one
  # cannot leak a previous run's numbers into BENCH_micro.json.
  rm -f "${OUT_DIR}/${name}.json"
  start="$(date +%s.%N)"
  # A failing figure bench must not abort the script before the canonical
  # BENCH_micro.json merge below; record the failure and keep going.
  if ! FLASH_BENCH_JSON="${OUT_DIR}/${name}.json" with_rss "${name}" "${bin}" \
      >"${OUT_DIR}/${name}.log" 2>&1; then
    echo "warning: ${name} failed (see ${OUT_DIR}/${name}.log)" >&2
    FIG_FAILURES=$((FIG_FAILURES + 1))
    continue
  fi
  end="$(date +%s.%N)"
  echo "${name} $(awk -v a="${start}" -v b="${end}" \
    'BEGIN { printf "%.3f", b - a }')" >>"${TIMINGS}"
done

echo
echo "== concurrent engine bench (sequential vs replay vs free-order) =="
# FLASH_BENCH_WORKERS (comma list, default "1,2,8") picks the thread counts
# for the replay and free-order rows; the replay rows' digests must match
# the sequential oracle's, and the bench exits non-zero if they don't.
rm -f "${OUT_DIR}/bench_concurrent.json"
if ! FLASH_BENCH_JSON="${OUT_DIR}/bench_concurrent.json" \
    with_rss bench_concurrent "${BUILD_DIR}/bench/bench_concurrent" \
    >"${OUT_DIR}/bench_concurrent.log" 2>&1; then
  echo "warning: bench_concurrent failed (see ${OUT_DIR}/bench_concurrent.log)" >&2
  FIG_FAILURES=$((FIG_FAILURES + 1))
fi
tail -n +4 "${OUT_DIR}/bench_concurrent.log" | sed -n '1,14p'

echo
echo "== scale bench (Lightning-scale streaming) =="
# Defaults to the FLASH_BENCH_FAST cell exported above; set
# FLASH_BENCH_SCALE_FULL=1 to run the full 10k/50k-node grid (minutes).
rm -f "${OUT_DIR}/bench_scale.json"
if [[ -n "${FLASH_BENCH_SCALE_FULL:-}" ]]; then
  unset FLASH_BENCH_FAST FLASH_BENCH_SMOKE  # fig loop above is done with them
fi
if ! FLASH_BENCH_JSON="${OUT_DIR}/bench_scale.json" \
    with_rss bench_scale "${BUILD_DIR}/bench/bench_scale" \
    >"${OUT_DIR}/bench_scale.log" 2>&1; then
  echo "warning: bench_scale failed (see ${OUT_DIR}/bench_scale.log)" >&2
  FIG_FAILURES=$((FIG_FAILURES + 1))
fi
tail -n +4 "${OUT_DIR}/bench_scale.log" | sed -n '1,8p'

# Merge the two micro-bench JSON reports into the canonical BENCH_micro.json
# at the repo root (the committed perf-trajectory snapshot). family_index
# values are per-binary, so the second report's are rebased to stay unique.
# The figure benches' wall-clock timings and the sweep thread count ride
# along under "sweep_benches"; bench_scale's cells under "scale"; per-bench
# peak RSS under "peak_rss_kib".
python3 - "${OUT_DIR}" "${REPO_ROOT}/BENCH_micro.json" "${THREADS}" <<'EOF'
import json, sys, pathlib
out = pathlib.Path(sys.argv[1])
dest = pathlib.Path(sys.argv[2])
threads = int(sys.argv[3])
merged = None
for name in ("BENCH_micro_algorithms.json", "BENCH_micro_routing.json"):
    with open(out / name) as f:
        report = json.load(f)
    if merged is None:
        merged = report
    else:
        base = 1 + max(
            (b.get("family_index", -1) for b in merged["benchmarks"]),
            default=-1)
        for b in report["benchmarks"]:
            if "family_index" in b:
                b["family_index"] += base
        merged["benchmarks"].extend(report["benchmarks"])

# The scratch-based graph-core benches ride along as their own section so
# the graph layer's perf trajectory is tracked separately from the legacy
# micro benches; the LP fee-split pipeline gets the same treatment.
with open(out / "BENCH_graph_core.json") as f:
    merged["graph_core"] = json.load(f)["benchmarks"]
with open(out / "BENCH_lp.json") as f:
    merged["lp_core"] = json.load(f)["benchmarks"]

# Peak RSS per bench binary (tools/with_rss.py lines: "name kib"; keep
# the max if a bench ran more than once).
rss = {}
rss_log = out / "peak_rss.txt"
if rss_log.exists():
    for line in rss_log.read_text().splitlines():
        name, _, kib = line.partition(" ")
        if kib:
            rss[name] = max(rss.get(name, 0), int(kib))
merged["peak_rss_kib"] = rss

sweeps = []
timings = out / "sweep_timings.txt"
if timings.exists():
    for line in timings.read_text().splitlines():
        name, _, secs = line.partition(" ")
        if not secs:
            continue
        entry = {"name": name, "wall_seconds": float(secs),
                 "threads": threads}
        if name in rss:
            entry["peak_rss_kib"] = rss[name]
        # Engine-reported stats (cells, engine wall clock) when the bench
        # emitted a structured sweep report.
        report_path = out / f"{name}.json"
        if report_path.exists():
            with open(report_path) as f:
                sweep = json.load(f)
            entry["sweep_wall_seconds"] = sweep.get("wall_seconds")
            entry["sweep_threads"] = sweep.get("threads")
            entry["cells"] = len(sweep.get("cells", []))
        sweeps.append(entry)
merged["sweep_benches"] = sweeps

# Lightning-scale streaming bench: per-cell payments/sec, router-cache
# stats and peak RSS (see bench/bench_scale.cc).
scale_path = out / "bench_scale.json"
if scale_path.exists():
    with open(scale_path) as f:
        merged["scale"] = json.load(f)["cells"]

# Concurrent payment engine: mode x threads throughput/latency rows plus
# the replay-vs-sequential digest evidence (see bench/bench_concurrent.cc).
conc_path = out / "bench_concurrent.json"
if conc_path.exists():
    with open(conc_path) as f:
        merged["concurrent"] = json.load(f)["cells"]

with open(dest, "w") as f:
    json.dump(merged, f, indent=1)
    f.write("\n")
print(f"wrote {dest} ({len(merged['benchmarks'])} benchmarks, "
      f"{len(sweeps)} figure benches)")
EOF

echo
echo "results in ${OUT_DIR}/"
if [[ "${FIG_FAILURES}" -gt 0 ]]; then
  echo "error: ${FIG_FAILURES} figure bench(es) failed" >&2
  exit 1
fi

#!/usr/bin/env bash
# Runs the benchmark suite and records results.
#
#   tools/run_benches.sh [build-dir] [out-dir]
#
# - Google Benchmark micro benches emit machine-readable JSON
#   (BENCH_micro.json), seeding the perf trajectory tracked across PRs.
# - fig*/ablation_* paper-figure benches run in FLASH_BENCH_FAST mode and
#   their paper-vs-measured tables are captured to one log per figure.
#
# Builds the bench_all target first if the build directory exists but the
# binaries do not.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench-results}"

if [[ ! -d "${BUILD_DIR}" ]]; then
  echo "error: build dir '${BUILD_DIR}' not found." >&2
  echo "run: cmake -B ${BUILD_DIR} -S . && cmake --build ${BUILD_DIR} -j" >&2
  exit 1
fi

cmake --build "${BUILD_DIR}" --target bench_all -j "$(nproc)"

mkdir -p "${OUT_DIR}"

echo "== micro benches (Google Benchmark) =="
"${BUILD_DIR}/bench/micro_algorithms" \
  --benchmark_out="${OUT_DIR}/BENCH_micro_algorithms.json" \
  --benchmark_out_format=json
"${BUILD_DIR}/bench/micro_routing" \
  --benchmark_out="${OUT_DIR}/BENCH_micro_routing.json" \
  --benchmark_out_format=json

# Merge the two JSON reports into the canonical BENCH_micro.json at the repo
# root (the committed perf-trajectory snapshot). family_index values are
# per-binary, so the second report's are rebased to stay unique.
REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
python3 - "${OUT_DIR}" "${REPO_ROOT}/BENCH_micro.json" <<'EOF'
import json, sys, pathlib
out = pathlib.Path(sys.argv[1])
dest = pathlib.Path(sys.argv[2])
merged = None
for name in ("BENCH_micro_algorithms.json", "BENCH_micro_routing.json"):
    with open(out / name) as f:
        report = json.load(f)
    if merged is None:
        merged = report
    else:
        base = 1 + max(
            (b.get("family_index", -1) for b in merged["benchmarks"]),
            default=-1)
        for b in report["benchmarks"]:
            if "family_index" in b:
                b["family_index"] += base
        merged["benchmarks"].extend(report["benchmarks"])
with open(dest, "w") as f:
    json.dump(merged, f, indent=1)
    f.write("\n")
print(f"wrote {dest} ({len(merged['benchmarks'])} benchmarks)")
EOF

echo
echo "== figure benches (FLASH_BENCH_FAST smoke sweeps) =="
export FLASH_BENCH_FAST=1
for bin in "${BUILD_DIR}"/bench/fig* "${BUILD_DIR}"/bench/ablation_*; do
  name="$(basename "${bin}")"
  [[ -x "${bin}" ]] || continue
  echo "-- ${name}"
  "${bin}" >"${OUT_DIR}/${name}.log"
done

echo
echo "results in ${OUT_DIR}/"

// flash_cli — command-line front end for the library.
//
// Subcommands:
//   gen-topology --kind ripple|lightning|ws --nodes N --seed S --out FILE
//       Generate a topology and write it as an edge list.
//   gen-trace --workload ripple|lightning --tx N --seed S --out FILE
//       Generate a synthetic transaction trace (CSV).
//   simulate --workload ripple|lightning|testbed --tx N --seed S
//            --scheme flash|spider|speedymurmurs|sp [--scale X] [--runs R]
//       Run the simulator and print §4.2 metrics.
//   testbed --scheme flash|spider|sp --nodes N --tx N --seed S
//       Run the message-level testbed and print §5.3 metrics.
//
// All subcommands are deterministic given --seed.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "core/flash.h"
#include "testbed/runner.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace flash;

/// Minimal --key value parser; unknown keys are an error.
class Args {
 public:
  Args(int argc, char** argv, int start) {
    for (int i = start; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        throw std::invalid_argument(std::string("expected --flag, got ") +
                                    argv[i]);
      }
      values_[argv[i] + 2] = argv[i + 1];
    }
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  std::size_t get_size(const std::string& key, std::size_t fallback) const {
    const auto it = values_.find(key);
    return it == values_.end()
               ? fallback
               : static_cast<std::size_t>(std::stoull(it->second));
  }
  double get_double(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }

 private:
  std::map<std::string, std::string> values_;
};

int cmd_gen_topology(const Args& args) {
  Rng rng(args.get_size("seed", 1));
  const std::string kind = args.get("kind", "ws");
  Graph g;
  if (kind == "ripple") {
    g = ripple_like(rng);
  } else if (kind == "lightning") {
    g = lightning_like(rng);
  } else if (kind == "ws") {
    g = watts_strogatz(args.get_size("nodes", 50), 8, 0.3, rng);
  } else {
    std::fprintf(stderr, "unknown --kind %s\n", kind.c_str());
    return 2;
  }
  const std::string out = args.get("out", "topology.csv");
  save_edge_list(out, g);
  std::printf("wrote %s: %zu nodes, %zu channels\n", out.c_str(),
              g.num_nodes(), g.num_channels());
  return 0;
}

Workload build_workload(const Args& args) {
  WorkloadConfig config;
  config.num_transactions = args.get_size("tx", 2000);
  config.seed = args.get_size("seed", 1);
  const std::string kind = args.get("workload", "ripple");
  if (kind == "ripple") return make_ripple_workload(config);
  if (kind == "lightning") return make_lightning_workload(config);
  if (kind == "testbed") {
    return make_testbed_workload(args.get_size("nodes", 50), 1000, 1500,
                                 config);
  }
  throw std::invalid_argument("unknown --workload " + kind);
}

int cmd_gen_trace(const Args& args) {
  const Workload w = build_workload(args);
  const std::string out = args.get("out", "trace.csv");
  save_trace(out, w.transactions());
  std::printf("wrote %s: %zu transactions on %zu-node %s topology\n",
              out.c_str(), w.transactions().size(), w.graph().num_nodes(),
              w.name().c_str());
  return 0;
}

Scheme parse_scheme(const std::string& name) {
  const std::string lower = to_lower(name);
  if (lower == "flash") return Scheme::kFlash;
  if (lower == "spider") return Scheme::kSpider;
  if (lower == "speedymurmurs" || lower == "sm") return Scheme::kSpeedyMurmurs;
  if (lower == "sp" || lower == "shortestpath") return Scheme::kShortestPath;
  throw std::invalid_argument("unknown --scheme " + name);
}

int cmd_simulate(const Args& args) {
  const Workload w = build_workload(args);
  const Scheme scheme = parse_scheme(args.get("scheme", "flash"));
  const std::size_t runs = args.get_size("runs", 1);
  SimConfig sim;
  sim.capacity_scale = args.get_double("scale", 10.0);

  TextTable t;
  t.header({"run", "succ ratio", "succ volume", "probe msgs", "fee/volume"});
  for (std::size_t run = 0; run < runs; ++run) {
    const auto router = make_router(scheme, w, {}, 1 + run);
    const SimResult r = run_simulation(w, *router, sim);
    t.row({std::to_string(run), fmt_pct(r.success_ratio()),
           fmt_sci(r.volume_succeeded, 3), std::to_string(r.probe_messages),
           fmt_pct(r.fee_ratio(), 2)});
  }
  std::printf("%s on %s (%zu tx, scale %.0f)\n", scheme_name(scheme).c_str(),
              w.name().c_str(), w.transactions().size(), sim.capacity_scale);
  std::fputs(t.render().c_str(), stdout);
  return 0;
}

int cmd_testbed(const Args& args) {
  testbed::TestbedConfig config;
  const std::string scheme = to_lower(args.get("scheme", "flash"));
  if (scheme == "flash") {
    config.scheme = testbed::TestbedScheme::kFlash;
  } else if (scheme == "spider") {
    config.scheme = testbed::TestbedScheme::kSpider;
  } else if (scheme == "sp") {
    config.scheme = testbed::TestbedScheme::kShortestPath;
  } else {
    std::fprintf(stderr, "unknown --scheme %s\n", scheme.c_str());
    return 2;
  }
  config.nodes = args.get_size("nodes", 50);
  config.num_transactions = args.get_size("tx", 10000);
  config.seed = args.get_size("seed", 1);
  const auto r = testbed::run_testbed(config);
  std::printf("%s testbed (%zu nodes, %zu tx): ratio %.1f%%, volume %.3e, "
              "delay %.2f ms (mice %.2f ms), %llu messages\n",
              testbed_scheme_name(config.scheme).c_str(), config.nodes,
              config.num_transactions, 100 * r.success_ratio(),
              r.volume_succeeded, r.avg_delay_ms(), r.avg_mice_delay_ms(),
              static_cast<unsigned long long>(r.messages));
  return 0;
}

void usage(std::FILE* out = stderr) {
  std::fputs(
      "usage: flash_cli <gen-topology|gen-trace|simulate|testbed> "
      "[--key value ...]\n"
      "  gen-topology --kind ripple|lightning|ws [--nodes N] [--seed S] "
      "[--out FILE]\n"
      "  gen-trace    --workload ripple|lightning|testbed [--tx N] "
      "[--seed S] [--out FILE]\n"
      "  simulate     --workload ... --scheme flash|spider|sm|sp "
      "[--tx N] [--scale X] [--runs R] [--seed S]\n"
      "  testbed      --scheme flash|spider|sp [--nodes N] [--tx N] "
      "[--seed S]\n",
      out);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  try {
    const std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "-h" || cmd == "help") {
      usage(stdout);
      return 0;
    }
    const Args args(argc, argv, 2);
    if (cmd == "gen-topology") return cmd_gen_topology(args);
    if (cmd == "gen-trace") return cmd_gen_trace(args);
    if (cmd == "simulate") return cmd_simulate(args);
    if (cmd == "testbed") return cmd_testbed(args);
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

// Quickstart: build an offchain network, route payments with Flash.
//
//   $ ./quickstart
//
// Walks through the whole public API surface in ~60 lines: topology
// generation, channel funding, fee schedules, router construction, and
// payment routing with the stats that come back.
#include <cstdio>

#include "core/flash.h"

int main() {
  using namespace flash;

  // 1. A 50-node small-world payment channel network (the paper's testbed
  //    shape), with channel capacities drawn from [1000, 1500) and split
  //    across the two directions.
  Rng rng(42);
  Graph graph = watts_strogatz(/*n=*/50, /*k_neighbors=*/8, /*beta=*/0.3, rng);
  std::printf("network: %zu nodes, %zu channels\n", graph.num_nodes(),
              graph.num_channels());

  NetworkState state(graph);
  state.assign_uniform_split(1000, 1500, rng);
  std::printf("total liquidity: %.0f\n", state.total_balance());

  // 2. Proportional relay fees as in the paper's evaluation: 90% of
  //    channels charge 0.1-1%, the rest 1-10%.
  FeeSchedule fees = FeeSchedule::paper_default(graph, rng);

  // 3. A Flash router: payments >= 500 count as elephants and get the
  //    probing max-flow treatment; smaller mice payments use the routing
  //    table with m = 4 paths per receiver.
  FlashConfig config;
  config.elephant_threshold = 500;
  config.k_elephant_paths = 20;
  config.m_mice_paths = 4;
  FlashRouter router(graph, fees, config);

  // 4. Route a mouse and an elephant.
  for (const Amount amount : {25.0, 2200.0}) {
    const Transaction tx{/*sender=*/3, /*receiver=*/29, amount, 0};
    const RouteResult r = router.route(tx, state);
    std::printf(
        "payment of %7.1f: %s  class=%s  paths=%u  probes=%u  fee=%.3f\n",
        amount, r.success ? "delivered" : "FAILED",
        r.elephant ? "elephant" : "mouse", r.paths_used, r.probes, r.fee);
  }

  // 5. The ledger stayed consistent throughout (channel conservation).
  std::printf("ledger invariants hold: %s\n",
              state.check_invariants() ? "yes" : "NO");
  return 0;
}

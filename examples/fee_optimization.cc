// Fee optimization: program (1) on a single elephant payment, step by step.
//
//   $ ./fee_optimization
//
// Shows the raw building blocks of §3.2: Algorithm 1 probing a path set on
// a hand-built network, then the LP split vs the sequential
// (discovery-order) split, with the fee difference made explicit.
#include <cstdio>

#include "core/flash.h"

int main() {
  using namespace flash;

  // Two disjoint 2-hop routes from 0 to 3: via 1 (expensive, 5%/hop) and
  // via 2 (cheap, 0.1%/hop), plus a direct but thin channel.
  Graph g(4);
  const EdgeId e01 = g.add_channel(0, 1);
  const EdgeId e13 = g.add_channel(1, 3);
  const EdgeId e02 = g.add_channel(0, 2);
  const EdgeId e23 = g.add_channel(2, 3);
  const EdgeId e03 = g.add_channel(0, 3);

  NetworkState state(g);
  for (const EdgeId e : {e01, e13, e02, e23}) state.set_balance(e, 80);
  state.set_balance(e03, 15);

  FeeSchedule fees(g);
  fees.set_policy(e01, {0, 0.05});
  fees.set_policy(e13, {0, 0.05});
  fees.set_policy(e02, {0, 0.001});
  fees.set_policy(e23, {0, 0.001});
  fees.set_policy(e03, {0, 0.02});

  const Amount demand = 120;
  std::printf("elephant payment: 0 -> 3, amount %.0f\n\n", demand);

  // Algorithm 1: probe paths until the flow covers the demand.
  ElephantProbeResult probe =
      elephant_find_paths(g, 0, 3, demand, /*max_paths=*/20, state);
  std::printf("Algorithm 1 found %zu paths, max flow %.0f (feasible: %s)\n",
              probe.paths.size(), probe.max_flow,
              probe.feasible ? "yes" : "no");
  for (std::size_t i = 0; i < probe.paths.size(); ++i) {
    std::printf("  path %zu: %-18s bottleneck %.0f, fee rate %.3f%%\n", i,
                g.format_path(probe.paths[i], 0).c_str(),
                probe.bottlenecks[i],
                100 * fees.path_rate(probe.paths[i]));
  }

  // Path selection: LP vs sequential.
  const SplitResult lp =
      optimize_fee_split(g, probe.paths, demand, probe.capacities, fees);
  const SplitResult seq =
      sequential_split(g, probe.paths, demand, probe.capacities, fees);

  std::printf("\n%-24s %-12s %s\n", "split", "LP (program 1)", "sequential");
  for (std::size_t i = 0; i < probe.paths.size(); ++i) {
    std::printf("  on path %zu:            %8.1f     %8.1f\n", i,
                lp.feasible ? lp.amounts[i] : 0.0,
                seq.feasible ? seq.amounts[i] : 0.0);
  }
  std::printf("  total fee:            %8.2f     %8.2f\n", lp.total_fee,
              seq.total_fee);
  if (lp.feasible && seq.feasible && seq.total_fee > 0) {
    std::printf("\nfee saving from optimization: %.1f%% (paper reports ~40%% "
                "on full workloads)\n",
                100 * (1 - lp.total_fee / seq.total_fee));
  }
  return 0;
}

// Topology churn end to end: gossip + routing-table refresh (§3.1/§3.3).
//
//   $ ./topology_churn
//
// The paper's prerequisite is that nodes keep a local topology via gossip
// and refresh their routing tables when it changes. This example closes a
// channel on the live network, floods the announcement, rebuilds the
// sender's local graph from its gossip view, and shows Flash routing
// around the gap after the refresh.
#include <cstdio>

#include "core/flash.h"

int main() {
  using namespace flash;

  // Diamond + shortcut: 0-1-3 / 0-2-3 / 0-3.
  Graph physical(4);
  physical.add_channel(0, 1);  // channel 0
  physical.add_channel(1, 3);  // channel 1
  physical.add_channel(0, 2);  // channel 2
  physical.add_channel(2, 3);  // channel 3
  physical.add_channel(0, 3);  // channel 4 (the direct shortcut)

  // Bootstrap: everyone gossips the full topology.
  gossip::GossipNetwork net(physical);
  net.announce_full_topology();
  auto [rounds, messages] = net.run_to_quiescence();
  std::printf("bootstrap gossip: %zu rounds, %llu messages, converged=%s\n",
              rounds, static_cast<unsigned long long>(messages),
              net.converged() ? "yes" : "no");

  // Node 0 builds its router from its own gossip view.
  Rng rng(7);
  Graph local = net.view(0).to_graph(physical.num_nodes());
  NetworkState state(local);
  state.assign_uniform_split(100, 200, rng);
  FeeSchedule fees = FeeSchedule::paper_default(local, rng);
  FlashConfig config;
  config.elephant_threshold = 1e9;  // mice only, to exercise the table
  FlashRouter router(local, fees, config);

  const Transaction tx{0, 3, 20.0, 0};
  RouteResult r = router.route(tx, state);
  std::printf("before churn: payment 0->3 %s over %u path(s)\n",
              r.success ? "delivered" : "failed", r.paths_used);

  // The direct channel 0-3 closes on-chain; its endpoints gossip it.
  net.announce_channel_close(4, /*seq=*/2);
  std::tie(rounds, messages) = net.run_to_quiescence();
  std::printf("churn gossip: %zu rounds, %llu messages\n", rounds,
              static_cast<unsigned long long>(messages));

  // Node 0 rebuilds its local graph and refreshes the routing table
  // ("all entries are re-computed using the latest G", §3.3).
  Graph refreshed = net.view(0).to_graph(physical.num_nodes());
  std::printf("local view after churn: %zu channels (was %zu)\n",
              refreshed.num_channels(), local.num_channels());
  NetworkState state2(refreshed);
  state2.assign_uniform_split(100, 200, rng);
  FeeSchedule fees2 = FeeSchedule::paper_default(refreshed, rng);
  FlashRouter router2(refreshed, fees2, config);
  r = router2.route(tx, state2);
  std::printf("after churn: payment 0->3 %s over %u path(s) "
              "(routed around the closed channel)\n",
              r.success ? "delivered" : "failed", r.paths_used);
  return 0;
}

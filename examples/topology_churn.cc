// Topology churn end to end, on the dynamic scenario engine (§3.1/§3.3).
//
//   $ ./topology_churn
//
// The paper's prerequisite is that nodes keep a local topology via gossip
// and refresh their routing tables when it changes. This example runs the
// same workload through three scenarios of increasing realism:
//
//   1. static        — the paper's evaluation setup: no churn, perfect
//                      topology knowledge (exactly run_simulation);
//   2. churn/instant — channels close and reopen on-chain, but every
//                      announcement reaches every node instantly, so
//                      routing tables always match the truth;
//   3. churn/delayed — the same churn schedule, but announcements flood
//                      one gossip hop per 24 time units: senders route on
//                      stale views, payments fail on phantom channels, and
//                      a single retry (after the view had a chance to
//                      refresh) recovers some of them.
//
// The delta between 2 and 3 is the price of stale topology knowledge —
// the effect fig14_churn_sweep measures across a whole grid.
#include <cstdio>

#include "sim/scenario.h"
#include "trace/workload.h"

int main() {
  using namespace flash;

  // Sparse ring topology with scarce channel deposits: the regime where
  // losing a channel actually hurts (see bench/fig14_churn_sweep.cc).
  const Workload workload = make_toy_workload(/*nodes=*/60, /*tx=*/600,
                                              /*seed=*/7);
  std::printf("workload: %zu nodes, %zu channels, %zu payments\n\n",
              workload.graph().num_nodes(), workload.graph().num_channels(),
              workload.transactions().size());

  SimConfig sim;
  sim.capacity_scale = 1.0;

  ScenarioConfig churn_instant;
  churn_instant.retry.max_retries = 1;
  churn_instant.retry.delay = 8;
  churn_instant.churn.close_rate = 0.25;   // a close every ~4 payments
  churn_instant.churn.mean_downtime = 60;  // most channels come back
  churn_instant.gossip.hop_delay = 0;      // announcements arrive instantly

  ScenarioConfig churn_delayed = churn_instant;
  churn_delayed.gossip.hop_delay = 24;  // one flooding hop per 24 time units

  struct RowSpec {
    const char* name;
    ScenarioConfig cfg;
  };
  const RowSpec rows[] = {
      {"static (paper setup)", ScenarioConfig{}},
      {"churn, instant gossip", churn_instant},
      {"churn, delayed gossip", churn_delayed},
  };

  std::printf("%-24s %8s %8s %8s %8s %10s %9s\n", "scenario", "success",
              "retries", "rescued", "stale", "closes/re", "rebuilds");
  ScenarioResult delayed;  // kept for the detail lines below
  for (const RowSpec& row : rows) {
    const ScenarioResult r =
        run_scenario(workload, Scheme::kFlash, {}, sim, row.cfg, /*seed=*/7);
    std::printf("%-24s %7.1f%% %8zu %8zu %8zu %6zu/%-4zu %9zu\n", row.name,
                100.0 * r.sim.success_ratio(), r.sim.retries,
                r.sim.retry_successes, r.sim.stale_view_failures,
                r.channels_closed, r.channels_reopened, r.router_rebuilds);
    if (&row == &rows[2]) delayed = r;
  }

  std::printf("\ndelayed-gossip run: %zu gossip rounds, %llu messages; "
              "mean time-to-success %.2f (retries defer settlement)\n",
              delayed.gossip_rounds,
              static_cast<unsigned long long>(delayed.gossip_messages),
              delayed.sim.mean_time_to_success());
  std::printf("stale views charge %zu failed attempts to topology "
              "staleness; with instant gossip that count is zero.\n",
              delayed.sim.stale_view_failures);
  return 0;
}

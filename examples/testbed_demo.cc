// Testbed demo: watch the §5.1 message protocol settle payments.
//
//   $ ./testbed_demo
//
// Runs the deterministic message-level emulation on a small network and
// prints per-scheme results plus the message-type census, making the
// two-phase commit protocol's cost visible (PROBE vs COMMIT vs CONFIRM vs
// REVERSE traffic).
#include <cstdio>

#include "testbed/message.h"
#include "testbed/runner.h"
#include "testbed/sessions.h"
#include "util/rng.h"
#include "util/table.h"

int main() {
  using namespace flash;
  using namespace flash::testbed;

  std::printf("message-level testbed: 30-node Watts-Strogatz, 1000 payments,"
              "\ncapacities U[1000,1500), Ripple-sized payments\n\n");

  TextTable table;
  table.header({"scheme", "succ ratio", "succ volume", "avg delay",
                "mice delay", "messages"});
  for (const auto scheme : {TestbedScheme::kFlash, TestbedScheme::kSpider,
                            TestbedScheme::kShortestPath}) {
    TestbedConfig config;
    config.scheme = scheme;
    config.nodes = 30;
    config.num_transactions = 1000;
    config.seed = 3;
    const TestbedResult r = run_testbed(config);
    table.row({testbed_scheme_name(scheme), fmt_pct(r.success_ratio()),
               fmt_sci(r.volume_succeeded, 3),
               fmt(r.avg_delay_ms(), 2) + "ms",
               fmt(r.avg_mice_delay_ms(), 2) + "ms",
               std::to_string(r.messages)});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nprotocol walkthrough (one Flash payment, 4-node line):\n");
  Graph g(4);
  const EdgeId e01 = g.add_channel(0, 1);
  const EdgeId e12 = g.add_channel(1, 2);
  const EdgeId e23 = g.add_channel(2, 3);
  Network net(g);
  for (const EdgeId e : {e01, e12, e23}) {
    net.set_balance(e, 100);
    net.set_balance(g.reverse(e), 100);
  }
  bool ok = false;
  Rng rng(1);
  FlashMiceSession session(net, {{0, 1, 2, 3}}, 40.0, rng,
                           [&](bool b) { ok = b; });
  session.start();
  net.queue().run_until_idle(10000);
  std::printf("  payment of 40 over 0->1->2->3: %s in %.2f ms\n",
              ok ? "settled" : "failed", net.queue().now());
  for (const auto type :
       {MsgType::kCommit, MsgType::kCommitAck, MsgType::kConfirm,
        MsgType::kConfirmAck, MsgType::kProbe, MsgType::kReverse}) {
    std::printf("  %-12s x%llu\n", to_string(type).c_str(),
                static_cast<unsigned long long>(net.messages_of(type)));
  }
  std::printf("  balances after settlement: 0->1: %.0f, 1->0: %.0f\n",
              net.balance(e01), net.balance(g.reverse(e01)));
  return 0;
}

// Payment-channel mechanics: the paper's Figures 1 and 2 as running code.
//
// Demonstrates the ledger substrate directly: a two-party channel with
// off-chain balance updates (Fig. 1), then a three-party network where an
// indirect payment is limited by the intermediate channel's balance
// (Fig. 2), including an atomic failure.
#include <cstdio>

#include "core/flash.h"

int main() {
  using namespace flash;

  // --- Figure 1: a single channel between Alice (0) and Bob (1). --------
  std::printf("== Figure 1: payment channel between Alice and Bob ==\n");
  Graph g1(2);
  const EdgeId alice_to_bob = g1.add_channel(0, 1);
  NetworkState chan(g1);
  // Alice deposits 4, Bob deposits 2 (satoshis).
  chan.set_balance(alice_to_bob, 4);
  chan.set_balance(g1.reverse(alice_to_bob), 2);
  std::printf("open:   Alice=%.0f Bob=%.0f (deposit %.0f)\n",
              chan.balance(alice_to_bob),
              chan.balance(g1.reverse(alice_to_bob)),
              chan.channel_deposit(alice_to_bob));

  // Tx1: Alice pays Bob 1.
  {
    AtomicPayment p(chan);
    p.add_part({alice_to_bob}, 1);
    p.commit();
  }
  std::printf("tx1:    Alice=%.0f Bob=%.0f  (Alice paid Bob 1)\n",
              chan.balance(alice_to_bob),
              chan.balance(g1.reverse(alice_to_bob)));

  // Tx2: Bob pays Alice 2.
  {
    AtomicPayment p(chan);
    p.add_part({g1.reverse(alice_to_bob)}, 2);
    p.commit();
  }
  std::printf("tx2:    Alice=%.0f Bob=%.0f  (Bob paid Alice 2)\n",
              chan.balance(alice_to_bob),
              chan.balance(g1.reverse(alice_to_bob)));
  std::printf("close:  final state committed on-chain\n\n");

  // --- Figure 2: indirect payment through Charlie. -----------------------
  std::printf("== Figure 2: Alice pays Bob through Charlie ==\n");
  Graph g2(3);  // 0 = Alice, 1 = Charlie, 2 = Bob
  const EdgeId a_c = g2.add_channel(0, 1);
  const EdgeId c_b = g2.add_channel(1, 2);
  NetworkState net(g2);
  net.set_balance(a_c, 4);
  net.set_balance(g2.reverse(a_c), 4);
  net.set_balance(c_b, 2);  // Charlie can only forward 2 to Bob
  net.set_balance(g2.reverse(c_b), 5);

  // 1 satoshi fits through Charlie.
  {
    AtomicPayment p(net);
    const bool ok = p.add_part({a_c, c_b}, 1);
    std::printf("Alice -> Charlie -> Bob, amount 1: %s\n",
                ok ? "delivered" : "failed");
    if (ok) p.commit();
  }

  // 3 satoshis exceed the Charlie->Bob balance; HTLC semantics roll back
  // everything, including the already-held Alice->Charlie hop.
  {
    AtomicPayment p(net);
    const bool ok = p.add_part({a_c, c_b}, 3);
    std::printf("Alice -> Charlie -> Bob, amount 3: %s (channel "
                "Charlie->Bob has %.0f)\n",
                ok ? "delivered" : "failed atomically",
                net.balance(c_b));
  }
  std::printf("Alice->Charlie balance unchanged by the failure: %.0f\n",
              net.balance(a_c));
  std::printf("invariants hold: %s\n",
              net.check_invariants() ? "yes" : "NO");
  return 0;
}

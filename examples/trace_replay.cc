// Trace replay: compare all four routing schemes on a Ripple-like workload.
//
//   $ ./trace_replay [num_transactions] [capacity_scale]
//
// Builds the paper's Ripple-like simulation setup (scale-free 1,870-node
// topology, heavy-tailed payment sizes, recurrent pairs), replays the same
// transaction stream through Flash, Spider, SpeedyMurmurs and SP, and
// prints the §4.2 metrics side by side. Accepts a real trace instead via
// FLASH_TRACE=/path/to/trace.csv (sender,receiver,amount[,timestamp]).
#include <cstdio>
#include <cstdlib>

#include "core/flash.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace flash;

  const std::size_t num_tx =
      argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 2000;
  const double scale = argc > 2 ? std::atof(argv[2]) : 10.0;

  WorkloadConfig config;
  config.num_transactions = num_tx;
  config.seed = 1;
  Workload workload = make_ripple_workload(config);

  if (const char* trace_path = std::getenv("FLASH_TRACE")) {
    std::printf("replaying external trace: %s\n", trace_path);
    auto txs = load_trace(trace_path);
    workload = Workload(workload.graph(), /*initial balances reused via*/
                        [&] {
                          std::vector<Amount> b(workload.graph().num_edges());
                          const NetworkState s = workload.make_state();
                          for (EdgeId e = 0; e < b.size(); ++e) {
                            b[e] = s.balance(e);
                          }
                          return b;
                        }(),
                        workload.fees(), std::move(txs), "external");
  }

  std::printf("workload: %s, %zu nodes, %zu channels, %zu transactions, "
              "capacity x%.0f\n",
              workload.name().c_str(), workload.graph().num_nodes(),
              workload.graph().num_channels(),
              workload.transactions().size(), scale);
  std::printf("elephant threshold (90th size percentile): %.2f\n\n",
              workload.size_quantile(0.9));

  TextTable table;
  table.header({"scheme", "succ ratio", "succ volume", "probe msgs",
                "fee/volume"});
  for (const Scheme scheme : all_schemes()) {
    const auto router = make_router(scheme, workload, {}, /*seed=*/7);
    SimConfig sim;
    sim.capacity_scale = scale;
    const SimResult r = run_simulation(workload, *router, sim);
    table.row({router->name(), fmt_pct(r.success_ratio()),
               fmt_sci(r.volume_succeeded, 3),
               std::to_string(r.probe_messages), fmt_pct(r.fee_ratio(), 2)});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
